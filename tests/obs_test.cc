// Unit tier for the observability layer: clocks, sharded counters,
// histograms, the registry's Prometheus exposition, and the query tracer's
// span recording + JSON-lines export. Everything time-dependent runs on a
// FakeClock so the assertions are exact.

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace metaprobe {
namespace obs {
namespace {

// ------------------------------------------------------------------ Clock

TEST(ClockTest, RealClockIsMonotonic) {
  const RealClock* clock = RealClock::Get();
  std::uint64_t a = clock->NowNanos();
  std::uint64_t b = clock->NowNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, FakeClockAdvancesOnlyWhenTold) {
  FakeClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  clock.Advance(500);
  EXPECT_EQ(clock.NowNanos(), 1500u);
}

TEST(ClockTest, FakeClockAutoStepsPerRead) {
  FakeClock clock(0, 10);
  EXPECT_EQ(clock.NowNanos(), 0u);
  EXPECT_EQ(clock.NowNanos(), 10u);
  EXPECT_EQ(clock.NowNanos(), 20u);
}

// ---------------------------------------------------------------- Counter

TEST(CounterTest, AddsAndMergesAcrossThreads) {
  Counter counter("test_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < 1000; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), 8000u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, CountsLandInTheRightBuckets) {
  Histogram h("lat_seconds", "", {0.1, 1.0, 10.0});
  h.Observe(0.05);   // < 0.1
  h.Observe(0.5);    // [0.1, 1)
  h.Observe(0.5);
  h.Observe(5.0);    // [1, 10)
  h.Observe(50.0);   // >= 10 -> +Inf cell
  std::vector<std::uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 edges -> 4 cells
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.05 + 0.5 + 0.5 + 5.0 + 50.0);
}

TEST(HistogramTest, DisabledFlagFreezesObservations) {
  std::atomic<bool> enabled{true};
  Histogram h("lat_seconds", "", {1.0}, &enabled);
  h.Observe(0.5);
  enabled.store(false);
  h.Observe(0.5);
  EXPECT_EQ(h.TotalCount(), 1u);
  enabled.store(true);
  h.Observe(0.5);
  EXPECT_EQ(h.TotalCount(), 2u);
}

TEST(ScopedTimerTest, ObservesElapsedSecondsFromInjectedClock) {
  FakeClock clock(0);
  Histogram h("lat_seconds", "", {0.1, 1.0});
  {
    ScopedTimer timer(&h, &clock);
    clock.Advance(500'000'000);  // 0.5s
  }
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5);
  EXPECT_EQ(h.BucketCounts()[1], 1u);  // [0.1, 1)
}

TEST(ScopedTimerTest, NullHistogramOrClockIsANoop) {
  FakeClock clock(0, 10);  // auto-stepping: any read would advance it
  { ScopedTimer timer(nullptr, &clock); }
  EXPECT_EQ(clock.NowNanos(), 0u);  // the timer never read the clock
  Histogram h("lat_seconds", "", {1.0});
  { ScopedTimer timer(&h, nullptr); }
  EXPECT_EQ(h.TotalCount(), 0u);
}

// --------------------------------------------------------- MetricRegistry

TEST(MetricRegistryTest, GetReturnsSameInstanceForSameNameAndLabels) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x_total", "kind=\"a\"");
  Counter* b = registry.GetCounter("x_total", "kind=\"a\"");
  Counter* c = registry.GetCounter("x_total", "kind=\"b\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // A kind clash on the same key is rejected, not aliased.
  EXPECT_EQ(registry.GetGauge("x_total", "kind=\"a\""), nullptr);
}

TEST(MetricRegistryTest, ExpositionFormatsCountersGaugesAndLabels) {
  MetricRegistry registry;
  registry.GetCounter("requests_total", "result=\"ok\"")->Add(3);
  registry.GetCounter("requests_total", "result=\"err\"")->Add(1);
  registry.GetGauge("temperature")->Set(21.5);
  registry.RegisterCallbackGauge("entries", "", []() { return 7.0; });
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{result=\"ok\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("requests_total{result=\"err\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE temperature gauge\n"), std::string::npos);
  EXPECT_NE(text.find("temperature 21.5\n"), std::string::npos);
  EXPECT_NE(text.find("entries 7\n"), std::string::npos);
  // One TYPE line for the two requests_total series (consecutive family).
  std::size_t first = text.find("# TYPE requests_total");
  EXPECT_EQ(text.find("# TYPE requests_total", first + 1), std::string::npos);
}

TEST(MetricRegistryTest, ExpositionHistogramBucketsAreCumulative) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat_seconds", "", {0.1, 1.0});
  // Powers of two: the sum is exact in binary and prints without noise.
  h->Observe(0.0625);
  h->Observe(0.5);
  h->Observe(2.0);
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 2.5625\n"), std::string::npos);
}

TEST(MetricRegistryTest, SetEnabledGatesHistogramsButNotCounters) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c_total");
  Histogram* h = registry.GetHistogram("h_seconds");
  registry.set_enabled(false);
  counter->Increment();
  h->Observe(0.5);
  EXPECT_EQ(counter->Value(), 1u);  // counters are the ServingStats path
  EXPECT_EQ(h->TotalCount(), 0u);
  registry.set_enabled(true);
  h->Observe(0.5);
  EXPECT_EQ(h->TotalCount(), 1u);
}

TEST(MetricRegistryTest, ResetCountersZeroesCountersAndHistograms) {
  MetricRegistry registry;
  registry.GetCounter("c_total")->Add(5);
  registry.GetGauge("g")->Set(3.0);
  registry.GetHistogram("h_seconds")->Observe(0.5);
  registry.ResetCounters();
  EXPECT_EQ(registry.GetCounter("c_total")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("h_seconds")->TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->Value(), 3.0);  // gauges keep
}

// ------------------------------------------------------------ QueryTracer

TEST(QueryTracerTest, SpansRecordTimesAndAttributes) {
  FakeClock clock(1'000'000'000);
  QueryTracer tracer(&clock);
  std::unique_ptr<QueryTrace> trace = tracer.StartTrace("alpha beta");
  TraceSpan* span = trace->StartSpan("probe");
  clock.Advance(2'000'000);  // 2ms
  span->Num("db", 3).Str("note", "hello");
  trace->EndSpan(span);
  EXPECT_EQ(span->name, "probe");
  EXPECT_DOUBLE_EQ(span->DurationSeconds(), 0.002);
  EXPECT_DOUBLE_EQ(span->num("db"), 3.0);
  EXPECT_DOUBLE_EQ(span->num("missing", -1.0), -1.0);
  ASSERT_NE(span->str("note"), nullptr);
  EXPECT_EQ(*span->str("note"), "hello");
  tracer.Finish(std::move(trace));
  ASSERT_EQ(tracer.finished_count(), 1u);
  auto latest = tracer.Latest();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->query(), "alpha beta");
  ASSERT_EQ(latest->spans().size(), 1u);
}

TEST(QueryTracerTest, FinishedRingIsBounded) {
  FakeClock clock;
  QueryTracer tracer(&clock, /*max_finished=*/2);
  for (int i = 0; i < 5; ++i) {
    std::string name = "q";
    name += std::to_string(i);
    tracer.Finish(tracer.StartTrace(name));
  }
  auto snapshot = tracer.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0]->query(), "q3");
  EXPECT_EQ(snapshot[1]->query(), "q4");
}

TEST(QueryTracerTest, ExportJsonLinesEmitsOneObjectPerSpan) {
  FakeClock clock(0);
  QueryTracer tracer(&clock);
  std::unique_ptr<QueryTrace> trace = tracer.StartTrace("say \"hi\"\n");
  TraceSpan* span = trace->StartSpan("estimate");
  clock.Advance(1'000'000);
  span->Num("databases", 3);
  trace->EndSpan(span);
  trace->AddEvent("stop")->Num("reached_threshold", 1);
  tracer.Finish(std::move(trace));

  std::string text = tracer.ExportJsonLinesText();
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> spans;
  while (std::getline(lines, line)) spans.push_back(line);
  ASSERT_EQ(spans.size(), 2u);
  // Query text is escaped; attributes are flattened to top-level keys.
  EXPECT_NE(spans[0].find("\"query\":\"say \\\"hi\\\"\\n\""),
            std::string::npos);
  EXPECT_NE(spans[0].find("\"span\":\"estimate\""), std::string::npos);
  EXPECT_NE(spans[0].find("\"databases\":3"), std::string::npos);
  EXPECT_NE(spans[0].find("\"duration_s\":0.001"), std::string::npos);
  EXPECT_NE(spans[1].find("\"span\":\"stop\""), std::string::npos);
  EXPECT_NE(spans[1].find("\"reached_threshold\":1"), std::string::npos);
}

TEST(QueryTracerTest, TraceIdsAreUniqueAndIncreasing) {
  FakeClock clock;
  QueryTracer tracer(&clock);
  auto a = tracer.StartTrace("a");
  auto b = tracer.StartTrace("b");
  EXPECT_LT(a->trace_id(), b->trace_id());
}

// Finishes one trace whose single span lasts `duration_ns`.
void FinishTraceOfDuration(QueryTracer* tracer, FakeClock* clock,
                           const std::string& query,
                           std::uint64_t duration_ns) {
  std::unique_ptr<QueryTrace> trace = tracer->StartTrace(query);
  TraceSpan* span = trace->StartSpan("work");
  clock->Advance(duration_ns);
  trace->EndSpan(span);
  tracer->Finish(std::move(trace));
}

TEST(QueryTracerTest, SlowRingKeepsOnlyTracesAtOrAboveThreshold) {
  FakeClock clock(0);
  QueryTracer tracer(&clock);
  // Threshold <= 0 (the default) disables slow sampling entirely.
  FinishTraceOfDuration(&tracer, &clock, "pre-threshold", 5'000'000);
  EXPECT_EQ(tracer.slow_count(), 0u);

  tracer.set_slow_threshold_seconds(0.010);
  EXPECT_DOUBLE_EQ(tracer.slow_threshold_seconds(), 0.010);
  FinishTraceOfDuration(&tracer, &clock, "fast", 1'000'000);      // 1ms
  FinishTraceOfDuration(&tracer, &clock, "slow", 50'000'000);     // 50ms
  FinishTraceOfDuration(&tracer, &clock, "boundary", 10'000'000); // exactly
  auto slow = tracer.SnapshotSlow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0]->query(), "slow");
  EXPECT_EQ(slow[1]->query(), "boundary");
  // Slow traces also sit in the regular finished ring (shared ownership).
  EXPECT_EQ(tracer.finished_count(), 4u);
}

TEST(QueryTracerTest, SlowRingIsBoundedAndSurvivesFinishedEviction) {
  FakeClock clock(0);
  // A tiny finished ring next to a slow ring of 2: slow traces stay
  // visible on /tracez after newer fast traces push them out of recent.
  QueryTracer tracer(&clock, /*max_finished=*/1, /*max_slow=*/2);
  tracer.set_slow_threshold_seconds(0.010);
  FinishTraceOfDuration(&tracer, &clock, "slow0", 20'000'000);
  FinishTraceOfDuration(&tracer, &clock, "slow1", 30'000'000);
  FinishTraceOfDuration(&tracer, &clock, "slow2", 40'000'000);
  FinishTraceOfDuration(&tracer, &clock, "fast", 1'000);
  auto slow = tracer.SnapshotSlow();
  ASSERT_EQ(slow.size(), 2u);  // slow0 displaced by newer slow traces
  EXPECT_EQ(slow[0]->query(), "slow1");
  EXPECT_EQ(slow[1]->query(), "slow2");
  auto recent = tracer.Snapshot();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0]->query(), "fast");

  tracer.Clear();
  EXPECT_EQ(tracer.slow_count(), 0u);
  EXPECT_EQ(tracer.finished_count(), 0u);
}

TEST(QueryTracerTest, TraceDurationSpansFirstStartToLastEnd) {
  FakeClock clock(0);
  QueryTracer tracer(&clock);
  std::unique_ptr<QueryTrace> trace = tracer.StartTrace("q");
  EXPECT_DOUBLE_EQ(trace->DurationSeconds(), 0.0);  // no spans yet
  TraceSpan* a = trace->StartSpan("a");
  clock.Advance(2'000'000);
  trace->EndSpan(a);
  TraceSpan* b = trace->StartSpan("b");
  clock.Advance(3'000'000);
  trace->EndSpan(b);
  EXPECT_DOUBLE_EQ(trace->DurationSeconds(), 0.005);
}

// --------------------------------------------------- label escaping

TEST(LabelEscapingTest, EscapeLabelValueHandlesQuotesBackslashesNewlines) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("line\nbreak"), "line\\nbreak");
  // Order matters: the backslash introduced for the quote must not be
  // re-escaped.
  EXPECT_EQ(EscapeLabelValue("\\\""), "\\\\\\\"");
}

TEST(LabelEscapingTest, FormatLabelProducesExpositionReadyPairs) {
  EXPECT_EQ(FormatLabel("db", "pubmed"), "db=\"pubmed\"");
  EXPECT_EQ(FormatLabel("db", "we\"ird\nname\\"),
            "db=\"we\\\"ird\\nname\\\\\"");
}

TEST(LabelEscapingTest, ExpositionEscapesHostileLabelValues) {
  MetricRegistry registry;
  registry.GetCounter("hostile_total", FormatLabel("db", "a\"b\\c\nd"))
      ->Increment();
  const std::string text = registry.ExpositionText();
  // The sample line must stay a single line with balanced quotes.
  EXPECT_NE(text.find("hostile_total{db=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
  // No raw newline may survive inside a label value: every line of the
  // exposition starts with '#' or the metric name.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line[0] == '#' || line.rfind("hostile_total", 0) == 0)
        << "stray exposition line: " << line;
  }
}

}  // namespace
}  // namespace obs
}  // namespace metaprobe
