#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "corpus/domain.h"
#include "corpus/query_log.h"
#include "corpus/synthetic_corpus.h"
#include "corpus/topic_model.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace corpus {
namespace {

// ------------------------------------------------------------------- Domain

TEST(DomainTest, AllDomainsNonEmpty) {
  EXPECT_GE(HealthTopics().size(), 8u);
  EXPECT_GE(ScienceTopics().size(), 4u);
  EXPECT_GE(NewsTopics().size(), 4u);
  EXPECT_GE(NewsgroupTopics().size(), 8u);
}

TEST(DomainTest, TopicsHaveEnoughSeedTerms) {
  for (const auto& topics : {HealthTopics(), ScienceTopics(), NewsTopics(),
                             NewsgroupTopics()}) {
    for (const TopicSpec& t : topics) {
      EXPECT_GE(t.seed_terms.size(), 30u) << t.name;
    }
  }
}

TEST(DomainTest, SeedTermsUniqueWithinTopic) {
  for (const TopicSpec& t : HealthTopics()) {
    std::set<std::string> unique(t.seed_terms.begin(), t.seed_terms.end());
    EXPECT_EQ(unique.size(), t.seed_terms.size()) << t.name;
  }
}

TEST(DomainTest, TopicNamesUniqueWithinDomain) {
  std::set<std::string> names;
  for (const TopicSpec& t : HealthTopics()) {
    EXPECT_TRUE(names.insert(t.name).second) << t.name;
  }
}

TEST(DomainTest, FindTopic) {
  auto topics = HealthTopics();
  ASSERT_NE(FindTopic(topics, "oncology"), nullptr);
  EXPECT_EQ(FindTopic(topics, "oncology")->name, "oncology");
  EXPECT_EQ(FindTopic(topics, "no-such-topic"), nullptr);
}

// -------------------------------------------------------------- TopicModel

TopicLanguageModel OncologyModel() {
  auto topics = HealthTopics();
  return TopicLanguageModel(*FindTopic(topics, "oncology"),
                            TopicModelOptions{});
}

TEST(TopicModelTest, SampleTermComesFromSeedTerms) {
  TopicLanguageModel model = OncologyModel();
  std::set<std::string> seeds(model.seed_terms().begin(),
                              model.seed_terms().end());
  stats::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    std::size_t sub = model.SampleSubtopic(&rng);
    EXPECT_TRUE(seeds.count(model.SampleTerm(sub, &rng)));
  }
}

TEST(TopicModelTest, SubtopicsPartitionTerms) {
  TopicLanguageModel model = OncologyModel();
  std::set<std::size_t> all_ranks;
  std::size_t total = 0;
  for (std::size_t s = 0; s < model.num_subtopics(); ++s) {
    for (std::size_t rank : model.SubtopicTermRanks(s)) {
      EXPECT_TRUE(all_ranks.insert(rank).second) << "rank in two subtopics";
      ++total;
    }
  }
  EXPECT_EQ(total, model.seed_terms().size());
}

TEST(TopicModelTest, SubtopicOfRoundRobin) {
  TopicLanguageModel model = OncologyModel();
  EXPECT_EQ(model.SubtopicOf(0), 0u);
  EXPECT_EQ(model.SubtopicOf(1), 1u);
  EXPECT_EQ(model.SubtopicOf(model.num_subtopics()), 0u);
}

TEST(TopicModelTest, SubtopicTermSamplingStaysInSubtopic) {
  TopicLanguageModel model = OncologyModel();
  stats::Rng rng(7);
  for (std::size_t s = 0; s < model.num_subtopics(); ++s) {
    std::set<std::string> pool;
    for (std::size_t rank : model.SubtopicTermRanks(s)) {
      pool.insert(model.seed_terms()[rank]);
    }
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(pool.count(model.SampleSubtopicTerm(s, &rng)));
    }
  }
}

TEST(TopicModelTest, AffinityBiasesTowardSubtopic) {
  TopicModelOptions options;
  options.subtopic_affinity = 0.9;
  auto topics = HealthTopics();
  TopicLanguageModel model(*FindTopic(topics, "oncology"), options);
  std::set<std::string> sub0;
  for (std::size_t rank : model.SubtopicTermRanks(0)) {
    sub0.insert(model.seed_terms()[rank]);
  }
  stats::Rng rng(11);
  int in_sub = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (sub0.count(model.SampleTerm(0, &rng))) ++in_sub;
  }
  // With 0.9 affinity the in-subtopic fraction far exceeds the ~1/4 a
  // subtopic would get under whole-topic sampling.
  EXPECT_GT(in_sub / static_cast<double>(n), 0.75);
}

TEST(TopicModelTest, ZeroSubtopicsSanitizedToOne) {
  TopicModelOptions options;
  options.num_subtopics = 0;
  auto topics = HealthTopics();
  TopicLanguageModel model(*FindTopic(topics, "cardiology"), options);
  EXPECT_EQ(model.num_subtopics(), 1u);
  stats::Rng rng(13);
  EXPECT_EQ(model.SampleSubtopic(&rng), 0u);
}

TEST(FillerVocabularyTest, GeneratesRequestedUniqueWords) {
  FillerVocabulary filler(500, 1.0, 99);
  EXPECT_EQ(filler.size(), 500u);
  std::set<std::string> unique(filler.terms().begin(), filler.terms().end());
  EXPECT_EQ(unique.size(), 500u);
}

TEST(FillerVocabularyTest, DeterministicForSeed) {
  FillerVocabulary a(100, 1.0, 42);
  FillerVocabulary b(100, 1.0, 42);
  EXPECT_EQ(a.terms(), b.terms());
}

TEST(FillerVocabularyTest, WordsArePlausibleTokens) {
  FillerVocabulary filler(200, 1.0, 7);
  for (const std::string& w : filler.terms()) {
    EXPECT_GE(w.size(), 2u);
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

// --------------------------------------------------------- CorpusGenerator

class CorpusGeneratorTest : public ::testing::Test {
 protected:
  CorpusGeneratorTest()
      : analyzer_(std::make_unique<text::Analyzer>()),
        generator_(HealthTopics(), CorpusGenerator::Options{},
                   analyzer_.get()) {}

  DatabaseSpec BasicSpec() const {
    DatabaseSpec spec;
    spec.name = "test-db";
    spec.num_docs = 300;
    spec.mixture = {{"oncology", 2.0}, {"cardiology", 1.0}};
    spec.seed = 77;
    return spec;
  }

  std::unique_ptr<text::Analyzer> analyzer_;
  CorpusGenerator generator_;
};

TEST_F(CorpusGeneratorTest, GeneratesRequestedDocCount) {
  auto db = generator_.Generate(BasicSpec());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->index.num_docs(), 300u);
  EXPECT_EQ(db->name, "test-db");
  EXPECT_EQ(db->documents, nullptr);
}

TEST_F(CorpusGeneratorTest, DeterministicForSeed) {
  auto a = generator_.Generate(BasicSpec());
  auto b = generator_.Generate(BasicSpec());
  ASSERT_TRUE(a.ok() && b.ok());
  index::IndexStats sa = a->index.GetStats();
  index::IndexStats sb = b->index.GetStats();
  EXPECT_EQ(sa.total_tokens, sb.total_tokens);
  EXPECT_EQ(sa.num_terms, sb.num_terms);
  EXPECT_EQ(a->index.DocumentFrequency("cancer"),
            b->index.DocumentFrequency("cancer"));
}

TEST_F(CorpusGeneratorTest, DifferentSeedsDiffer) {
  DatabaseSpec other = BasicSpec();
  other.seed = 78;
  auto a = generator_.Generate(BasicSpec());
  auto b = generator_.Generate(other);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->index.GetStats().total_tokens, b->index.GetStats().total_tokens);
}

TEST_F(CorpusGeneratorTest, TopicalTermsAppear) {
  auto db = generator_.Generate(BasicSpec());
  ASSERT_TRUE(db.ok());
  // "cancer" is rank-0 oncology and the mixture is oncology-heavy, so it
  // must be frequent (terms are stemmed: "cancer" stems to itself).
  EXPECT_GT(db->index.DocumentFrequency("cancer"), 50u);
}

TEST_F(CorpusGeneratorTest, MixtureShapesContent) {
  DatabaseSpec cardio = BasicSpec();
  cardio.name = "cardio";
  cardio.mixture = {{"cardiology", 1.0}};
  auto onco_db = generator_.Generate(BasicSpec());
  auto cardio_db = generator_.Generate(cardio);
  ASSERT_TRUE(onco_db.ok() && cardio_db.ok());
  EXPECT_GT(onco_db->index.DocumentFrequency("cancer"),
            cardio_db->index.DocumentFrequency("cancer"));
  EXPECT_GT(cardio_db->index.DocumentFrequency("heart"),
            onco_db->index.DocumentFrequency("heart"));
}

TEST_F(CorpusGeneratorTest, RejectsEmptyMixture) {
  DatabaseSpec spec = BasicSpec();
  spec.mixture.clear();
  EXPECT_TRUE(generator_.Generate(spec).status().IsInvalidArgument());
}

TEST_F(CorpusGeneratorTest, RejectsUnknownTopic) {
  DatabaseSpec spec = BasicSpec();
  spec.mixture = {{"astrology", 1.0}};
  EXPECT_TRUE(generator_.Generate(spec).status().IsNotFound());
}

TEST_F(CorpusGeneratorTest, RejectsZeroDocs) {
  DatabaseSpec spec = BasicSpec();
  spec.num_docs = 0;
  EXPECT_TRUE(generator_.Generate(spec).status().IsInvalidArgument());
}

TEST_F(CorpusGeneratorTest, StoreDocumentsKeepsText) {
  DatabaseSpec spec = BasicSpec();
  spec.num_docs = 20;
  spec.store_documents = true;
  auto db = generator_.Generate(spec);
  ASSERT_TRUE(db.ok());
  ASSERT_NE(db->documents, nullptr);
  EXPECT_EQ(db->documents->size(), 20u);
  auto doc = db->documents->Get(0);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE((*doc)->body.empty());
  EXPECT_FALSE((*doc)->title.empty());
}

TEST_F(CorpusGeneratorTest, DocLengthsRespectClamp) {
  DatabaseSpec spec = BasicSpec();
  spec.num_docs = 100;
  spec.min_doc_length = 30;
  spec.max_doc_length = 60;
  auto db = generator_.Generate(spec);
  ASSERT_TRUE(db.ok());
  index::IndexStats stats = db->index.GetStats();
  // Analyzed token count can be below raw length (stopwords removed), so
  // only the upper bound is strict.
  EXPECT_LE(stats.total_tokens, 100u * 60u);
  EXPECT_GT(stats.total_tokens, 0u);
}

TEST_F(CorpusGeneratorTest, ModelLookup) {
  EXPECT_NE(generator_.Model("oncology"), nullptr);
  EXPECT_EQ(generator_.Model("nope"), nullptr);
}

TEST_F(CorpusGeneratorTest, AnalyzeCachedMatchesAnalyzer) {
  EXPECT_EQ(generator_.AnalyzeCached("cancers"),
            analyzer_->AnalyzeTerm("cancers"));
  EXPECT_EQ(generator_.AnalyzeCached("the"), "");
}

// ---------------------------------------------------------------- QueryLog

class QueryLogTest : public ::testing::Test {
 protected:
  QueryLogTest()
      : analyzer_(std::make_unique<text::Analyzer>()),
        generator_(HealthTopics(), CorpusGenerator::Options{},
                   analyzer_.get()) {}

  QueryLogGenerator MakeGenerator(QueryLogOptions options = {}) {
    std::vector<std::string> topics;
    for (const TopicSpec& t : HealthTopics()) topics.push_back(t.name);
    return QueryLogGenerator(&generator_, topics, options);
  }

  std::unique_ptr<text::Analyzer> analyzer_;
  CorpusGenerator generator_;
};

TEST_F(QueryLogTest, GeneratesRequestedCounts) {
  QueryLogGenerator gen = MakeGenerator();
  auto queries = gen.Generate(50);
  ASSERT_TRUE(queries.ok());
  // 50 two-term + 50 three-term by default.
  ASSERT_EQ(queries->size(), 100u);
  std::size_t two = 0, three = 0;
  for (const core::Query& q : *queries) {
    if (q.num_terms() == 2) ++two;
    if (q.num_terms() == 3) ++three;
  }
  EXPECT_EQ(two, 50u);
  EXPECT_EQ(three, 50u);
}

TEST_F(QueryLogTest, QueriesAreUnique) {
  QueryLogGenerator gen = MakeGenerator();
  auto queries = gen.Generate(200);
  ASSERT_TRUE(queries.ok());
  std::unordered_set<std::string> keys;
  for (const core::Query& q : *queries) {
    EXPECT_TRUE(keys.insert(core::QueryKey(q)).second) << q.raw;
  }
}

TEST_F(QueryLogTest, SplitIsDisjoint) {
  QueryLogGenerator gen = MakeGenerator();
  auto split = gen.GenerateSplit(100, 100);
  ASSERT_TRUE(split.ok());
  std::unordered_set<std::string> train_keys;
  for (const core::Query& q : split->first) {
    train_keys.insert(core::QueryKey(q));
  }
  for (const core::Query& q : split->second) {
    EXPECT_FALSE(train_keys.count(core::QueryKey(q))) << q.raw;
  }
}

TEST_F(QueryLogTest, TermsAreAnalyzedAndDistinct) {
  QueryLogGenerator gen = MakeGenerator();
  auto queries = gen.Generate(100);
  ASSERT_TRUE(queries.ok());
  for (const core::Query& q : *queries) {
    std::set<std::string> unique(q.terms.begin(), q.terms.end());
    EXPECT_EQ(unique.size(), q.terms.size()) << q.raw;
    // Query terms equal the analysis of the raw words, so they land in the
    // same term space as indexed documents. (Porter stemming is not
    // idempotent, so re-analyzing a stem may differ; what matters is that
    // query and document pass through the pipeline exactly once each.)
    EXPECT_EQ(q.terms, analyzer_->Analyze(q.raw)) << q.raw;
    for (const std::string& term : q.terms) {
      EXPECT_FALSE(term.empty());
      for (char c : term) EXPECT_TRUE(c >= 'a' && c <= 'z') << term;
    }
  }
}

TEST_F(QueryLogTest, DeterministicForSeed) {
  QueryLogOptions options;
  options.seed = 1234;
  auto a = MakeGenerator(options).Generate(30);
  auto b = MakeGenerator(options).Generate(30);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].terms, (*b)[i].terms);
  }
}

TEST_F(QueryLogTest, CustomTermCounts) {
  QueryLogOptions options;
  options.term_counts = {4};
  QueryLogGenerator gen = MakeGenerator(options);
  auto queries = gen.Generate(20);
  ASSERT_TRUE(queries.ok());
  for (const core::Query& q : *queries) EXPECT_EQ(q.num_terms(), 4u);
}

TEST_F(QueryLogTest, RejectsNonPositiveTermCount) {
  QueryLogOptions options;
  options.term_counts = {0};
  QueryLogGenerator gen = MakeGenerator(options);
  EXPECT_TRUE(gen.Generate(5).status().IsInvalidArgument());
}

TEST_F(QueryLogTest, ExhaustionReportsInternalError) {
  // One ~40-term topic with no cross-topic or filler substitution offers
  // fewer than C(40, 2) unique 2-term queries; asking for 5000 must fail
  // with a diagnostic rather than loop forever.
  QueryLogOptions options;
  options.term_counts = {2};
  options.cross_topic_prob = 0.0;
  options.filler_term_prob = 0.0;
  options.max_rejects = 5000;
  QueryLogGenerator gen(&generator_, {"oncology"}, options);
  auto result = gen.Generate(5000);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace corpus
}  // namespace metaprobe
