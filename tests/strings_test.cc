#include "common/strings.h"

#include <gtest/gtest.h>

namespace metaprobe {
namespace {

TEST(SplitStringTest, BasicSplit) {
  EXPECT_EQ(SplitString("a b c", " "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, MultipleDelimiters) {
  EXPECT_EQ(SplitString("a,b;c", ",;"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, DropsEmptyPieces) {
  EXPECT_EQ(SplitString("  a   b  ", " "),
            (std::vector<std::string>{"a", "b"}));
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", " ").empty());
}

TEST(SplitStringTest, NoDelimiterPresent) {
  EXPECT_EQ(SplitString("abc", ","), (std::vector<std::string>{"abc"}));
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string original = "breast cancer treatment";
  EXPECT_EQ(JoinStrings(SplitString(original, " "), " "), original);
}

TEST(ToLowerAsciiTest, Lowercases) {
  EXPECT_EQ(ToLowerAscii("Breast CANCER"), "breast cancer");
  EXPECT_EQ(ToLowerAscii("already"), "already");
  EXPECT_EQ(ToLowerAscii("With-123"), "with-123");
}

TEST(StripAsciiWhitespaceTest, Strips) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("database", "data"));
  EXPECT_FALSE(StartsWith("data", "database"));
  EXPECT_TRUE(EndsWith("database", "base"));
  EXPECT_FALSE(EndsWith("base", "database"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(0.755, 3), "0.755");
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(GetEnvLongTest, FallbackWhenUnset) {
  unsetenv("METAPROBE_TEST_ENV_LONG");
  EXPECT_EQ(GetEnvLong("METAPROBE_TEST_ENV_LONG", 42), 42);
}

TEST(GetEnvLongTest, ReadsValue) {
  setenv("METAPROBE_TEST_ENV_LONG", "17", 1);
  EXPECT_EQ(GetEnvLong("METAPROBE_TEST_ENV_LONG", 42), 17);
  unsetenv("METAPROBE_TEST_ENV_LONG");
}

TEST(GetEnvLongTest, RejectsGarbageAndNonPositive) {
  setenv("METAPROBE_TEST_ENV_LONG", "abc", 1);
  EXPECT_EQ(GetEnvLong("METAPROBE_TEST_ENV_LONG", 42), 42);
  setenv("METAPROBE_TEST_ENV_LONG", "-3", 1);
  EXPECT_EQ(GetEnvLong("METAPROBE_TEST_ENV_LONG", 42), 42);
  setenv("METAPROBE_TEST_ENV_LONG", "0", 1);
  EXPECT_EQ(GetEnvLong("METAPROBE_TEST_ENV_LONG", 42), 42);
  unsetenv("METAPROBE_TEST_ENV_LONG");
}

}  // namespace
}  // namespace metaprobe
