// End-to-end integration tests on a shrunken version of the paper's
// Section 6 testbed: synthetic health/science/news databases, disjoint
// train/test query traces, trained metasearcher, golden-standard scoring.
// These validate the paper's *qualitative* claims at small scale:
//   1. RD-based selection beats the term-independence baseline.
//   2. Adaptive probing raises correctness further.
//   3. Higher certainty thresholds cost more probes.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/metasearcher.h"
#include "core/selection.h"
#include "eval/golden.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace eval {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedOptions options;
    options.scale = 1;
    options.train_queries_per_term_count = 150;
    options.test_queries_per_term_count = 100;
    options.seed = 20260707;
    testbed_ = new Testbed(BuildHealthTestbed(options).ValueOrDie());
    // Shrink per-database size for test speed: regenerate at tiny scale is
    // not needed; the default testbed is already laptop scale.
    metasearcher_ =
        BuildTrainedMetasearcher(*testbed_).ValueOrDie().release();
    golden_ = new GoldenStandard(
        GoldenStandard::Build(testbed_->database_ptrs(),
                              testbed_->test_queries)
            .ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete golden_;
    delete metasearcher_;
    delete testbed_;
    golden_ = nullptr;
    metasearcher_ = nullptr;
    testbed_ = nullptr;
  }

  static Testbed* testbed_;
  static core::Metasearcher* metasearcher_;
  static GoldenStandard* golden_;
};

Testbed* IntegrationTest::testbed_ = nullptr;
core::Metasearcher* IntegrationTest::metasearcher_ = nullptr;
GoldenStandard* IntegrationTest::golden_ = nullptr;

TEST_F(IntegrationTest, TestbedShape) {
  EXPECT_EQ(testbed_->num_databases(), 20u);
  EXPECT_EQ(testbed_->train_queries.size(), 300u);
  EXPECT_EQ(testbed_->test_queries.size(), 200u);
  for (const auto& db : testbed_->databases) {
    EXPECT_GT(db->size(), 1000u) << db->name();
  }
}

TEST_F(IntegrationTest, QueriesHitDifferentDatabases) {
  // The golden standard must not be degenerate: different queries favor
  // different databases.
  std::set<std::size_t> winners;
  for (std::size_t q = 0; q < golden_->num_queries(); ++q) {
    winners.insert(golden_->TopK(q, 1)[0]);
  }
  EXPECT_GE(winners.size(), 5u);
}

TEST_F(IntegrationTest, EstimatorErrsNonUniformly) {
  // Section 2.3's premise: for a meaningful fraction of test queries the
  // baseline picks the wrong top-1 database.
  int wrong = 0;
  for (std::size_t q = 0; q < golden_->num_queries(); ++q) {
    core::SelectionResult baseline = core::SelectByEstimate(
        metasearcher_->EstimateAll(testbed_->test_queries[q]), 1);
    if (core::AbsoluteCorrectness(baseline.databases, golden_->TopK(q, 1)) <
        1.0) {
      ++wrong;
    }
  }
  EXPECT_GT(wrong, static_cast<int>(golden_->num_queries()) / 10);
}

TEST_F(IntegrationTest, RdBasedBeatsBaselineTopOne) {
  // The paper's headline Figure 15 effect, at reduced scale.
  double baseline_total = 0.0, rd_total = 0.0;
  for (std::size_t q = 0; q < golden_->num_queries(); ++q) {
    const core::Query& query = testbed_->test_queries[q];
    std::vector<std::size_t> actual = golden_->TopK(q, 1);
    core::SelectionResult baseline =
        core::SelectByEstimate(metasearcher_->EstimateAll(query), 1);
    baseline_total +=
        core::AbsoluteCorrectness(baseline.databases, actual);
    core::TopKModel model =
        metasearcher_->BuildModel(query).ValueOrDie();
    core::SelectionResult rd_based =
        core::SelectByRd(model, 1, core::CorrectnessMetric::kAbsolute);
    rd_total += core::AbsoluteCorrectness(rd_based.databases, actual);
  }
  double n = static_cast<double>(golden_->num_queries());
  EXPECT_GT(rd_total / n, baseline_total / n)
      << "baseline=" << baseline_total / n << " rd=" << rd_total / n;
}

TEST_F(IntegrationTest, ProbingImprovesCorrectness) {
  // Average correctness after 2 probes must exceed the no-probe answer
  // (Figure 16's qualitative shape), measured on a query subsample.
  double no_probe_total = 0.0, probed_total = 0.0;
  const std::size_t sample = std::min<std::size_t>(60, golden_->num_queries());
  core::GreedyUsefulnessPolicy policy;
  for (std::size_t q = 0; q < sample; ++q) {
    const core::Query& query = testbed_->test_queries[q];
    std::vector<std::size_t> actual = golden_->TopK(q, 1);
    core::TopKModel model = metasearcher_->BuildModel(query).ValueOrDie();
    core::AProOptions options;
    options.k = 1;
    options.threshold = 1.0;
    options.max_probes = 2;
    options.record_trace = true;
    core::AdaptiveProber prober(&policy, options);
    core::ProbeFn probe = [&](std::size_t db) -> Result<double> {
      return golden_->Relevancy(q, db);
    };
    core::AProResult result = prober.Run(&model, probe).ValueOrDie();
    no_probe_total += core::AbsoluteCorrectness(
        result.trace.front().databases, actual);
    probed_total +=
        core::AbsoluteCorrectness(result.selected, actual);
  }
  // Probing helps in expectation; on a 60-query subsample a one-query dip
  // is within noise, so allow small slack around equality.
  EXPECT_GE(probed_total, no_probe_total - 2.0);
  EXPECT_GT(probed_total / static_cast<double>(sample), 0.5);
}

TEST_F(IntegrationTest, HigherThresholdCostsMoreProbes) {
  const std::size_t sample = std::min<std::size_t>(50, golden_->num_queries());
  core::GreedyUsefulnessPolicy policy;
  auto average_probes = [&](double threshold) {
    double total = 0.0;
    for (std::size_t q = 0; q < sample; ++q) {
      core::TopKModel model =
          metasearcher_->BuildModel(testbed_->test_queries[q]).ValueOrDie();
      core::AProOptions options;
      options.k = 1;
      options.threshold = threshold;
      core::AdaptiveProber prober(&policy, options);
      core::ProbeFn probe = [&](std::size_t db) -> Result<double> {
        return golden_->Relevancy(q, db);
      };
      core::AProResult result = prober.Run(&model, probe).ValueOrDie();
      EXPECT_TRUE(result.reached_threshold);
      total += result.num_probes();
    }
    return total / static_cast<double>(sample);
  };
  double low = average_probes(0.7);
  double high = average_probes(0.95);
  EXPECT_LE(low, high);
}

TEST_F(IntegrationTest, SelectReportsConsistent) {
  auto report = metasearcher_->Select(testbed_->test_queries[0], 3, 0.7);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->databases.size(), 3u);
  EXPECT_EQ(report->database_names.size(), 3u);
  EXPECT_EQ(report->estimates.size(), 20u);
  EXPECT_TRUE(std::is_sorted(report->databases.begin(),
                             report->databases.end()));
}

TEST_F(IntegrationTest, NewsgroupTestbedBuilds) {
  TestbedOptions options;
  options.scale = 1;
  options.train_queries_per_term_count = 20;
  options.test_queries_per_term_count = 10;
  options.seed = 5;
  auto testbed = BuildNewsgroupTestbed(options);
  ASSERT_TRUE(testbed.ok());
  EXPECT_EQ(testbed->num_databases(), 20u);
  for (const auto& db : testbed->databases) {
    EXPECT_GE(db->size(), 1000u);
  }
}

}  // namespace
}  // namespace eval
}  // namespace metaprobe
