#include "core/metasearcher.h"

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/ed_learner.h"
#include "eval/golden.h"
#include "eval/table.h"

namespace metaprobe {
namespace core {
namespace {

// A tiny deterministic world: three databases with hand-built contents.
// "alpha beta" co-occur perfectly in db0 (underestimated), never co-occur
// in db1 (overestimated), and are independent-ish in db2.
std::shared_ptr<LocalDatabase> MakeDb(const std::string& name,
                                      int pattern, int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    switch (pattern) {
      case 0:  // correlated: half the docs have both terms
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                           : std::vector<std::string>{"pad", "fill"};
        break;
      case 1:  // anti-correlated: terms never co-occur
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                           : std::vector<std::string>{"beta", "fill"};
        break;
      default:  // independent-ish mix
        if (d % 4 == 0) terms = {"alpha", "beta"};
        else if (d % 4 == 1) terms = {"alpha", "pad"};
        else if (d % 4 == 2) terms = {"beta", "pad"};
        else terms = {"pad", "fill"};
        break;
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

class MetasearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    searcher_ = std::make_unique<Metasearcher>();
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("corr", 0, 200)).ok());
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("anti", 1, 200)).ok());
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("mix", 2, 200)).ok());
  }

  std::vector<Query> TrainingQueries() {
    // The deterministic world has a tiny vocabulary; train on the
    // combinations that exist.
    std::vector<Query> queries;
    for (int i = 0; i < 30; ++i) {
      queries.push_back(MakeQuery({"alpha", "beta"}));
      // "alpha fill" never co-occurs anywhere, so the low-estimate EDs mix
      // -100% with the positive "alpha beta" errors and stay spread out.
      queries.push_back(MakeQuery({"alpha", "fill"}));
      queries.push_back(MakeQuery({"alpha", "pad"}));
      queries.push_back(MakeQuery({"beta", "pad"}));
      queries.push_back(MakeQuery({"pad", "fill"}));
    }
    return queries;
  }

  std::unique_ptr<Metasearcher> searcher_;
};

TEST_F(MetasearcherTest, LifecycleGuards) {
  Query q = MakeQuery({"alpha", "beta"});
  EXPECT_TRUE(searcher_->BuildModel(q).status().IsFailedPrecondition());
  EXPECT_TRUE(searcher_->Select(q, 1, 0.5).status().IsFailedPrecondition());
  EXPECT_TRUE(searcher_->Train({}).IsInvalidArgument());
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  EXPECT_TRUE(searcher_->trained());
  // No structural mutation after training.
  EXPECT_TRUE(searcher_->AddLocalDatabase(MakeDb("late", 0, 10))
                  .IsFailedPrecondition());
  EXPECT_TRUE(searcher_->SetEstimator(
                  std::make_unique<TermIndependenceEstimator>())
                  .IsFailedPrecondition());
}

TEST_F(MetasearcherTest, RejectsNullInputs) {
  EXPECT_TRUE(searcher_->AddLocalDatabase(nullptr).IsInvalidArgument());
  EXPECT_TRUE(searcher_->SetEstimator(nullptr).IsInvalidArgument());
}

TEST_F(MetasearcherTest, EstimatesFollowEq1) {
  // db "corr": 200 docs, df(alpha)=df(beta)=100 -> estimate 50.
  std::vector<double> estimates =
      searcher_->EstimateAll(MakeQuery({"alpha", "beta"}));
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_DOUBLE_EQ(estimates[0], 50.0);
  EXPECT_DOUBLE_EQ(estimates[1], 50.0);
  EXPECT_DOUBLE_EQ(estimates[2], 50.0);
}

TEST_F(MetasearcherTest, RdModelCorrectsCorrelationErrors) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  auto model = searcher_->BuildModel(MakeQuery({"alpha", "beta"}));
  ASSERT_TRUE(model.ok());
  // True relevancies: corr=100, anti=0, mix=50. All estimates equal 50, so
  // only the learned EDs can separate them: the corr database's RD must sit
  // above the anti database's.
  EXPECT_GT(model->rd(0).Mean(), model->rd(1).Mean());
  TopKModel::BestSet best =
      model->FindBestSet(1, CorrectnessMetric::kAbsolute);
  EXPECT_EQ(best.members, (std::vector<std::size_t>{0}));
}

TEST_F(MetasearcherTest, SelectWithoutProbingWhenConfident) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  auto report = searcher_->Select(MakeQuery({"alpha", "beta"}), 1, 0.05);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->reached_threshold);
  EXPECT_EQ(report->num_probes(), 0);
  ASSERT_EQ(report->databases.size(), 1u);
  EXPECT_EQ(report->database_names[0], "corr");
}

TEST_F(MetasearcherTest, SelectProbesForHighCertainty) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  auto report = searcher_->Select(MakeQuery({"alpha", "beta"}), 1, 0.999);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->num_probes(), 0);
  EXPECT_EQ(report->databases, (std::vector<std::size_t>{0}));
  EXPECT_GE(report->expected_correctness, 0.999);
}

TEST_F(MetasearcherTest, SelectRejectsEmptyQuery) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  EXPECT_TRUE(
      searcher_->Select(MakeQuery({}), 1, 0.5).status().IsInvalidArgument());
}

TEST_F(MetasearcherTest, SearchFusesResults) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  auto hits = searcher_->Search(MakeQuery({"alpha", "beta"}), 2, 0.05, 5, 8);
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->empty());
  EXPECT_LE(hits->size(), 8u);
  for (const FusedHit& hit : *hits) {
    EXPECT_FALSE(hit.database_name.empty());
    EXPECT_FALSE(hit.title.empty());
  }
}

TEST_F(MetasearcherTest, ProbeAccountingVisible) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  std::uint64_t before = searcher_->database(0).queries_served();
  ASSERT_TRUE(searcher_->Select(MakeQuery({"alpha", "beta"}), 1, 0.999).ok());
  std::uint64_t after = searcher_->database(0).queries_served();
  EXPECT_GT(after, before);
}

TEST_F(MetasearcherTest, CustomPolicyIsUsed) {
  ASSERT_TRUE(searcher_->Train(TrainingQueries()).ok());
  searcher_->SetProbingPolicy(std::make_unique<RoundRobinProbingPolicy>());
  auto report = searcher_->Select(MakeQuery({"alpha", "beta"}), 1, 0.999);
  ASSERT_TRUE(report.ok());
  // Round-robin probes databases in id order.
  for (std::size_t i = 0; i < report->probe_order.size(); ++i) {
    EXPECT_EQ(report->probe_order[i], i);
  }
}

// -------------------------------------------------------------- EdLearner

TEST(EdLearnerTest, LearnsPerTypeDistributions) {
  auto db = MakeDb("corr", 0, 100);
  StatSummary summary =
      StatSummary::FromIndex("corr", db->index_for_summaries());
  TermIndependenceEstimator estimator;
  QueryTypeClassifier classifier;
  EdLearner learner(&estimator, &classifier, {});
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) queries.push_back(MakeQuery({"alpha", "beta"}));
  auto table = learner.Learn({db.get()}, {&summary}, queries);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_databases(), 1u);
  EXPECT_EQ(table->num_types(), classifier.num_types());
  EXPECT_EQ(table->total_samples(), 10u);
  // "alpha beta" estimates to 25 on 100 docs -> low-estimate 2-term type.
  QueryTypeId type = classifier.Classify(MakeQuery({"alpha", "beta"}), 25.0);
  EXPECT_EQ(table->Get(0, type).sample_count(), 10u);
}

TEST(EdLearnerTest, SampleCapRespected) {
  auto db = MakeDb("corr", 0, 100);
  StatSummary summary =
      StatSummary::FromIndex("corr", db->index_for_summaries());
  TermIndependenceEstimator estimator;
  QueryTypeClassifier classifier;
  EdLearnerOptions options;
  options.max_samples_per_type = 5;
  EdLearner learner(&estimator, &classifier, options);
  std::vector<Query> queries(20, MakeQuery({"alpha", "beta"}));
  auto table = learner.Learn({db.get()}, {&summary}, queries);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->total_samples(), 5u);
}

TEST(EdLearnerTest, MismatchedInputsRejected) {
  TermIndependenceEstimator estimator;
  QueryTypeClassifier classifier;
  EdLearner learner(&estimator, &classifier, {});
  auto db = MakeDb("x", 0, 10);
  EXPECT_TRUE(
      learner.Learn({db.get()}, {}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(learner.Learn({}, {}, {}).status().IsInvalidArgument());
}

// ------------------------------------------------------ GoldenStandard

TEST(GoldenStandardTest, RecordsTrueRelevancies) {
  auto corr = MakeDb("corr", 0, 100);
  auto anti = MakeDb("anti", 1, 100);
  std::vector<const HiddenWebDatabase*> dbs{corr.get(), anti.get()};
  std::vector<Query> queries{MakeQuery({"alpha", "beta"}),
                             MakeQuery({"alpha"})};
  auto golden = eval::GoldenStandard::Build(dbs, queries);
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(golden->num_queries(), 2u);
  EXPECT_EQ(golden->num_databases(), 2u);
  EXPECT_DOUBLE_EQ(golden->Relevancy(0, 0), 50.0);  // both terms, half docs
  EXPECT_DOUBLE_EQ(golden->Relevancy(0, 1), 0.0);   // never co-occur
  EXPECT_EQ(golden->TopK(0, 1), (std::vector<std::size_t>{0}));
}

TEST(GoldenStandardTest, TopKTieBreak) {
  auto a = MakeDb("a", 1, 100);
  auto b = MakeDb("b", 1, 100);
  std::vector<const HiddenWebDatabase*> dbs{a.get(), b.get()};
  std::vector<Query> queries{MakeQuery({"alpha"})};
  auto golden = eval::GoldenStandard::Build(dbs, queries);
  ASSERT_TRUE(golden.ok());
  // Equal relevancies: lower id wins.
  EXPECT_EQ(golden->TopK(0, 1), (std::vector<std::size_t>{0}));
}

// ------------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  eval::TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  eval::TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, CsvEscaping) {
  eval::TablePrinter table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(eval::Cell(0.7554, 3), "0.755");
  EXPECT_EQ(eval::Cell(std::size_t{42}), "42");
  EXPECT_EQ(eval::Cell(-3), "-3");
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
