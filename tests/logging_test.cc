// Tests for the logging satellite: record prefixes carry a monotonic
// timestamp and a per-thread id, threshold filtering works, and the
// test-helper reset makes the threshold re-readable from the environment.

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace metaprobe {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetLogThresholdForTest(); }
};

TEST_F(LoggingTest, PrefixCarriesLevelTimestampThreadIdAndLocation) {
  SetLogThreshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  METAPROBE_LOG(Info) << "hello";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO "), std::string::npos);
  EXPECT_NE(out.find(" tid="), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc:"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  // The timestamp is a fractional seconds count right after the level.
  std::size_t level_end = out.find("[INFO ") + 6;
  EXPECT_NE(out.find('.', level_end), std::string::npos);
}

TEST_F(LoggingTest, RecordsBelowThresholdAreDropped) {
  SetLogThreshold(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  METAPROBE_LOG(Info) << "quiet";
  METAPROBE_LOG(Warning) << "loud";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("quiet"), std::string::npos);
  EXPECT_NE(out.find("loud"), std::string::npos);
}

TEST_F(LoggingTest, ResetRereadsEnvironmentThreshold) {
  // With METAPROBE_LOG_LEVEL unset in the test environment the default is
  // kInfo; an explicit override survives until reset.
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  ResetLogThresholdForTest();
  const char* env = std::getenv("METAPROBE_LOG_LEVEL");
  if (env == nullptr) {
    EXPECT_EQ(GetLogThreshold(), LogLevel::kInfo);
  } else {
    // Whatever the environment says, the override must be gone.
    EXPECT_NE(GetLogThreshold(), LogLevel::kError);
  }
}

TEST_F(LoggingTest, DistinctThreadsGetDistinctIds) {
  SetLogThreshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  METAPROBE_LOG(Info) << "main";
  std::thread t([]() { METAPROBE_LOG(Info) << "worker"; });
  t.join();
  std::string out = ::testing::internal::GetCapturedStderr();

  // Extract the tid= value from each of the two records.
  auto tid_at = [&out](std::size_t from) {
    std::size_t pos = out.find(" tid=", from);
    EXPECT_NE(pos, std::string::npos);
    return std::stoi(out.substr(pos + 5));
  };
  std::size_t first = out.find(" tid=");
  ASSERT_NE(first, std::string::npos);
  int id_a = tid_at(first);
  int id_b = tid_at(first + 5);
  EXPECT_NE(id_a, id_b);
}

}  // namespace
}  // namespace metaprobe
