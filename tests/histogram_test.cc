#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace metaprobe {
namespace stats {
namespace {

Histogram MakeSimple() {
  // Edges {0, 1, 2} -> cells (-inf,0) [0,1) [1,2) [2,inf).
  return Histogram::Make({0.0, 1.0, 2.0}).ValueOrDie();
}

TEST(HistogramTest, MakeRejectsEmptyEdges) {
  EXPECT_TRUE(Histogram::Make({}).status().IsInvalidArgument());
}

TEST(HistogramTest, MakeRejectsNonIncreasingEdges) {
  EXPECT_TRUE(Histogram::Make({1.0, 1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(Histogram::Make({2.0, 1.0}).status().IsInvalidArgument());
}

TEST(HistogramTest, MakeRejectsNonFiniteEdges) {
  EXPECT_TRUE(Histogram::Make({0.0, std::numeric_limits<double>::infinity()})
                  .status()
                  .IsInvalidArgument());
}

TEST(HistogramTest, CellCountIsEdgesPlusOne) {
  EXPECT_EQ(MakeSimple().num_cells(), 4u);
}

TEST(HistogramTest, CellForRoutesValues) {
  Histogram h = MakeSimple();
  EXPECT_EQ(h.CellFor(-5.0), 0u);
  EXPECT_EQ(h.CellFor(0.0), 1u);   // lower edge inclusive
  EXPECT_EQ(h.CellFor(0.5), 1u);
  EXPECT_EQ(h.CellFor(1.0), 2u);
  EXPECT_EQ(h.CellFor(1.999), 2u);
  EXPECT_EQ(h.CellFor(2.0), 3u);
  EXPECT_EQ(h.CellFor(100.0), 3u);
}

TEST(HistogramTest, AddAccumulates) {
  Histogram h = MakeSimple();
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(HistogramTest, AddWeighted) {
  Histogram h = MakeSimple();
  h.AddWeighted(0.5, 2.5);
  EXPECT_DOUBLE_EQ(h.count(1), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 2.5);
}

TEST(HistogramTest, NonPositiveWeightIgnored) {
  Histogram h = MakeSimple();
  h.AddWeighted(0.5, 0.0);
  h.AddWeighted(0.5, -1.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(HistogramTest, NonFiniteValueIgnored) {
  Histogram h = MakeSimple();
  h.Add(std::nan(""));
  h.Add(std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(HistogramTest, ProbabilitiesNormalize) {
  Histogram h = MakeSimple();
  h.Add(0.5);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(2.5);
  std::vector<double> p = h.Probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.25);
  EXPECT_DOUBLE_EQ(p[3], 0.25);
}

TEST(HistogramTest, EmptyProbabilitiesAreZero) {
  std::vector<double> p = MakeSimple().Probabilities();
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HistogramTest, InteriorRepresentativeIsMidpoint) {
  Histogram h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.Representative(1), 0.5);
  EXPECT_DOUBLE_EQ(h.Representative(2), 1.5);
}

TEST(HistogramTest, TailRepresentativesExtendHalfWidth) {
  Histogram h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.Representative(0), -0.5);  // 0 - 1/2
  EXPECT_DOUBLE_EQ(h.Representative(3), 2.5);   // 2 + 1/2
}

TEST(HistogramTest, SingleEdgeRepresentatives) {
  Histogram h = Histogram::Make({0.0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(h.Representative(0), -1.0);
  EXPECT_DOUBLE_EQ(h.Representative(1), 1.0);
}

TEST(HistogramTest, EdgesOfCells) {
  Histogram h = MakeSimple();
  EXPECT_EQ(h.LowerEdge(0), -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.UpperEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.LowerEdge(2), 1.0);
  EXPECT_DOUBLE_EQ(h.UpperEdge(2), 2.0);
  EXPECT_EQ(h.UpperEdge(3), std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, MergeFromSameEdges) {
  Histogram a = MakeSimple();
  Histogram b = MakeSimple();
  a.Add(0.5);
  b.Add(0.5);
  b.Add(1.5);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_DOUBLE_EQ(a.count(1), 2.0);
  EXPECT_DOUBLE_EQ(a.count(2), 1.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.0);
}

TEST(HistogramTest, MergeRejectsDifferentEdges) {
  Histogram a = MakeSimple();
  Histogram b = Histogram::Make({0.0, 5.0}).ValueOrDie();
  EXPECT_TRUE(a.MergeFrom(b).IsInvalidArgument());
}

TEST(HistogramTest, ClearResets) {
  Histogram h = MakeSimple();
  h.Add(0.5);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(1), 0.0);
}

TEST(HistogramTest, ToAsciiHasOneLinePerCell) {
  Histogram h = MakeSimple();
  h.Add(0.5);
  std::string art = h.ToAscii(10);
  std::size_t lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(lines, h.num_cells());
}

class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, TotalEqualsSumOfCells) {
  Histogram h =
      Histogram::Make({-1.0, -0.5, 0.0, 0.5, 1.0, 2.0}).ValueOrDie();
  // Deterministic pseudo-random values.
  unsigned seed = static_cast<unsigned>(GetParam());
  for (int i = 0; i < 500; ++i) {
    seed = seed * 1664525u + 1013904223u;
    double v = (seed % 10000) / 2000.0 - 2.0;  // [-2, 3)
    h.Add(v);
  }
  double sum = 0.0;
  for (std::size_t c = 0; c < h.num_cells(); ++c) sum += h.count(c);
  EXPECT_DOUBLE_EQ(sum, h.total());
  std::vector<double> p = h.Probabilities();
  double prob_sum = 0.0;
  for (double v : p) prob_sum += v;
  EXPECT_NEAR(prob_sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stats
}  // namespace metaprobe
