// Copyright 2026 The metaprobe Authors
//
// Negative-compile fixture: calls a REQUIRES(mutex_) method without
// holding the capability. Registered with WILL_FAIL — clang's
// `-Werror=thread-safety` must reject this file (warning
// -Wthread-safety-analysis: "calling function 'UnsafeGet' requires
// holding mutex 'mutex_'").

#include "common/mutex.h"

namespace {

class Guarded {
 public:
  int UnsafeGet() const REQUIRES(mutex_) { return value_; }

  int Get() const {
    return UnsafeGet();  // BUG under test: caller holds nothing.
  }

 private:
  mutable metaprobe::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.Get();
}
