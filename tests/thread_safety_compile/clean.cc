// Copyright 2026 The metaprobe Authors
//
// Positive control for the thread-safety negative-compile suite: a
// correctly locked use of every annotation the sibling fixtures violate.
// Must compile warning-free under `-Wthread-safety -Werror=thread-safety`
// — if this file ever fails, the suite is testing the fixture setup, not
// the analysis.

#include "common/mutex.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    metaprobe::MutexLock lock(mutex_);
    value_ = v;
  }

  int UnsafeGet() const REQUIRES(mutex_) { return value_; }

  int Get() const {
    metaprobe::MutexLock lock(mutex_);
    return UnsafeGet();
  }

 private:
  mutable metaprobe::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(42);
  return g.Get() == 42 ? 0 : 1;
}
