// Copyright 2026 The metaprobe Authors
//
// Negative-compile fixture: writes a GUARDED_BY member without holding
// its mutex. Registered with WILL_FAIL — clang's
// `-Werror=thread-safety` must reject this file (warning
// -Wthread-safety-analysis: "writing variable 'value_' requires holding
// mutex 'mutex_' exclusively").

#include "common/mutex.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    value_ = v;  // BUG under test: no MutexLock taken.
  }

 private:
  mutable metaprobe::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(42);
  return 0;
}
