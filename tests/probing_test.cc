#include "core/probing.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/trace.h"

namespace metaprobe {
namespace core {
namespace {

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

// Example 6 / Figures 12-13: db1 RD {50:.3, 100:.4, 150:.3},
// db2 RD {70:.4, 130:.6}; k=1, t=0.8.
TopKModel Example6Model() {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{50, 0.3}, {100, 0.4}, {150, 0.3}}));
  rds.push_back(Rd({{70, 0.4}, {130, 0.6}}));
  return TopKModel(std::move(rds));
}

ProbingContext Ctx(int k = 1, int width = 10, double threshold = 1.0) {
  ProbingContext context;
  context.k = k;
  context.search_width = width;
  context.threshold = threshold;
  return context;
}

ProbeFn FixedTruth(std::vector<double> truths) {
  return [truths](std::size_t db) -> Result<double> { return truths[db]; };
}

TEST(GreedyPolicyTest, PaperExample6UsefulnessComputation) {
  // Reconstructing Figure 13 by hand:
  //   probing db1: outcomes 50 -> usefulness 1, 150 -> 1,
  //                100 -> max(Pr(db2<100), Pr(db2>100)) = 0.6
  //   expected = .3*1 + .4*.6 + .3*1 = 0.84
  //   probing db2: outcomes 70 -> max(.3, .7) = .7, 130 -> max(.7, .3) = .7
  //   expected = 0.70
  // Greedy must pick db1.
  TopKModel model = Example6Model();
  GreedyUsefulnessPolicy policy;
  std::vector<bool> probed{false, false};
  std::size_t choice =
      policy.SelectDb(&model, probed, Ctx(1, 10));
  EXPECT_EQ(choice, 0u);
}

TEST(GreedyPolicyTest, ConditioningLeavesModelIntact) {
  TopKModel model = Example6Model();
  double before = model.PrExactTopSet({1});
  GreedyUsefulnessPolicy policy;
  std::vector<bool> probed{false, false};
  policy.SelectDb(&model, probed, Ctx(1, 10));
  EXPECT_NEAR(model.PrExactTopSet({1}), before, 1e-12);
}

TEST(GreedyPolicyTest, SkipsProbedDatabases) {
  TopKModel model = Example6Model();
  GreedyUsefulnessPolicy policy;
  std::vector<bool> probed{true, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10)),
            1u);
}

TEST(RandomPolicyTest, OnlyPicksUnprobed) {
  RandomProbingPolicy policy(7);
  TopKModel model = Example6Model();
  std::vector<bool> probed{false, true};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
              0u);
  }
}

TEST(RoundRobinPolicyTest, PicksLowestUnprobed) {
  RoundRobinProbingPolicy policy;
  TopKModel model = Example6Model();
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
            0u);
  probed[0] = true;
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
            1u);
}

TEST(MaxVariancePolicyTest, PicksWidestRd) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{99, 0.5}, {101, 0.5}}));   // stddev 1
  rds.push_back(Rd({{0, 0.5}, {200, 0.5}}));    // stddev 100
  TopKModel model(std::move(rds));
  MaxVarianceProbingPolicy policy;
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
            1u);
}

TEST(MembershipEntropyPolicyTest, PicksMostUncertainMember) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{500, 1.0}}));              // certain member (H ~ 0)
  rds.push_back(Rd({{90, 0.5}, {110, 0.5}}));   // contender, H ~ max
  rds.push_back(Rd({{1, 0.9}, {100, 0.1}}));    // mostly out
  TopKModel model(std::move(rds));
  MembershipEntropyPolicy policy;
  std::vector<bool> probed{false, false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(2, 10)), 1u);
}

TEST(MembershipEntropyPolicyTest, SkipsProbed) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{90, 0.5}, {110, 0.5}}));
  rds.push_back(Rd({{95, 0.5}, {105, 0.5}}));
  TopKModel model(std::move(rds));
  MembershipEntropyPolicy policy;
  std::vector<bool> probed{true, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10)), 1u);
}

TEST(StoppingProbabilityPolicyTest, PaperExample6PicksDb1) {
  // t = 0.8: probing db1 crosses t on outcomes 50 and 150 (prob 0.6);
  // probing db2 can never cross (both outcomes leave best E at 0.7).
  TopKModel model = Example6Model();
  StoppingProbabilityPolicy policy;
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10, 0.8)), 0u);
}

TEST(StoppingProbabilityPolicyTest, MaximizesCrossingChance) {
  // db0 {80:.5, 120:.5}, db1 {60:.8, 100:.2}; prior Pr(db0 top) = 0.9.
  // With t = 0.95: probing db1 stops w.p. 0.8 (outcome 60 -> certainty 1);
  // probing db0 stops w.p. 0.5 (outcome 120).
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{80, 0.5}, {120, 0.5}}));
  rds.push_back(Rd({{60, 0.8}, {100, 0.2}}));
  TopKModel model(std::move(rds));
  StoppingProbabilityPolicy policy;
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10, 0.95)), 1u);
}

TEST(ExpectimaxPolicyTest, PicksProbeMinimizingExpectedProbes) {
  // Example 6 state, t = 0.8: probing db1 finishes immediately with
  // probability 0.6 (expected total ~1.4 probes); probing db2 never
  // finishes in one step (expected total 2). Expectimax must pick db1.
  TopKModel model = Example6Model();
  ExpectimaxProbingPolicy policy(2);
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10, 0.8)), 0u);
}

TEST(ExpectimaxPolicyTest, DepthOneStillWorks) {
  TopKModel model = Example6Model();
  ExpectimaxProbingPolicy policy(1);
  std::vector<bool> probed{false, false};
  std::size_t choice = policy.SelectDb(&model, probed, Ctx(1, 10, 0.8));
  EXPECT_EQ(choice, 0u);
}

TEST(ExpectimaxPolicyTest, LeavesModelIntact) {
  TopKModel model = Example6Model();
  double before = model.PrExactTopSet({1});
  ExpectimaxProbingPolicy policy(3);
  std::vector<bool> probed{false, false};
  policy.SelectDb(&model, probed, Ctx(1, 10, 0.9));
  EXPECT_NEAR(model.PrExactTopSet({1}), before, 1e-12);
}

TEST(ExpectimaxPolicyTest, NameIncludesDepth) {
  EXPECT_EQ(ExpectimaxProbingPolicy(2).name(), "expectimax(depth=2)");
  EXPECT_EQ(ExpectimaxProbingPolicy(0).name(), "expectimax(depth=1)");
}

TEST(ExpectimaxPolicyTest, AgreesWithFullExpectimaxOnTinyInstances) {
  // With depth >= number of databases, the policy IS the optimal policy of
  // the paper's extended report on these instances.
  stats::Rng rng(777);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<RelevancyDistribution> rds;
    for (int i = 0; i < 3; ++i) {
      std::vector<stats::Atom> atoms;
      for (int a = 0; a < 2; ++a) {
        atoms.push_back(
            {std::floor(rng.Uniform(0, 10)) * 10, rng.Uniform(0.1, 1.0)});
      }
      rds.push_back(Rd(std::move(atoms)));
    }
    TopKModel model(std::move(rds));
    ExpectimaxProbingPolicy deep(3);
    std::vector<bool> probed(3, false);
    std::size_t choice = deep.SelectDb(&model, probed, Ctx(1, 100, 0.9));
    EXPECT_LT(choice, 3u);
  }
}

// ------------------------- heterogeneous probing costs (Section 5.2) -----

TEST(CostAwareProbingTest, StoppingPolicyPrefersCheapInformativeProbe) {
  // Two contenders with identical RDs (equally informative probes by
  // symmetry); db0 costs 10x as much to probe. The cost-aware stopping
  // policy must pick db1.
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{10, 0.5}, {100, 0.5}}));
  rds.push_back(Rd({{10, 0.5}, {100, 0.5}}));
  TopKModel model(std::move(rds));
  StoppingProbabilityPolicy policy;
  std::vector<bool> probed{false, false};
  std::vector<double> costs{10.0, 1.0};
  ProbingContext context = Ctx(1, 10, 0.95);
  context.probe_costs = &costs;
  EXPECT_EQ(policy.SelectDb(&model, probed, context), 1u);
  // With the cost skew reversed, the choice flips.
  costs = {1.0, 10.0};
  EXPECT_EQ(policy.SelectDb(&model, probed, context), 0u);
}

TEST(CostAwareProbingTest, TotalCostAccounted) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.probe_costs = {3.0, 5.0};
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 2);
  EXPECT_DOUBLE_EQ(result->total_cost, 8.0);
}

TEST(CostAwareProbingTest, UnitCostsEqualAttemptCount) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost,
                   static_cast<double>(result->num_probes()));
}

TEST(CostAwareProbingTest, MaxCostBudgetStopsTheLoop) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.probe_costs = {4.0, 4.0};
  options.max_cost = 4.0;  // one probe's worth
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 1);
  EXPECT_FALSE(result->reached_threshold);
}

TEST(CostAwareProbingTest, RejectsMismatchedCostVector) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.probe_costs = {1.0, 2.0, 3.0};  // three costs, two databases
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  EXPECT_TRUE(prober.Run(&model, FixedTruth({100, 130}))
                  .status()
                  .IsInvalidArgument());
}

TEST(GreedyUsefulnessTest, ExpectedUsefulnessIsAMartingale) {
  // Reproduction finding (see DESIGN.md): unless some probe outcome flips
  // the best answer set, the expected usefulness of EVERY probe equals the
  // prior certainty exactly — so the paper's greedy cannot distinguish
  // informative from useless probes in flip-free situations.
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{80, 0.5}, {120, 0.5}}));
  rds.push_back(Rd({{60, 0.5}, {100, 0.5}}));
  TopKModel model(std::move(rds));
  double prior = model.FindBestSet(1, CorrectnessMetric::kAbsolute, 10)
                     .expected_correctness;
  EXPECT_NEAR(prior, 0.75, 1e-9);
  for (std::size_t i = 0; i < 2; ++i) {
    const std::vector<stats::Atom> support = model.SupportOf(i);
    double usefulness = 0.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition cond(&model, i, atom.value);
      usefulness += atom.prob *
                    model.FindBestSet(1, CorrectnessMetric::kAbsolute, 10)
                        .expected_correctness;
    }
    EXPECT_NEAR(usefulness, prior, 1e-9) << "db " << i;
  }
}

TEST(AdaptiveProberTest, StopsImmediatelyWhenCertaintyMet) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  // RD-based certainty: Pr(db2 top) = .6*.7 + .4*.3 = 0.54 >= 0.5.
  options.threshold = 0.5;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 0);
  EXPECT_TRUE(result->reached_threshold);
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(result->expected_correctness, 0.54, 1e-9);
}

TEST(AdaptiveProberTest, ProbesUntilThreshold) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 0.9;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  // Truth: db1 = 100, db2 = 130 -> after probing db1 (greedy pick), the
  // certainty of db2 is Pr(db2 > 100) = 0.6... then db2 must be probed too.
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reached_threshold);
  EXPECT_GE(result->expected_correctness, 0.9);
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{1}));
  EXPECT_EQ(result->num_probes(), 2);
  EXPECT_EQ(result->probe_order, (std::vector<std::size_t>{0, 1}));
}

TEST(AdaptiveProberTest, ThresholdOneProbesEverythingAtWorst) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({150, 70}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reached_threshold);
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{0}));
  EXPECT_NEAR(result->expected_correctness, 1.0, 1e-12);
}

TEST(AdaptiveProberTest, MaxProbesBudgetRespected) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.max_probes = 1;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 1);
  EXPECT_FALSE(result->reached_threshold);
}

TEST(AdaptiveProberTest, TraceRecordsEveryStep) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.record_trace = true;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  // Entry 0 = RD-based answer (no probing), then one entry per probe.
  ASSERT_EQ(result->trace.size(),
            static_cast<std::size_t>(result->num_probes()) + 1);
  EXPECT_NEAR(result->trace[0].expected_correctness, 0.54, 1e-9);
  // Certainty of the reported answer never decreases... not guaranteed in
  // general, but holds on this example.
  EXPECT_GE(result->trace.back().expected_correctness,
            result->trace.front().expected_correctness);
}

TEST(AdaptiveProberTest, ProbeObservationsAreApplied) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({150, 70}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(model.rd(0).IsImpulse());
}

TEST(AdaptiveProberTest, RejectsBadArguments) {
  GreedyUsefulnessPolicy policy;
  AProOptions options;
  options.k = 0;
  AdaptiveProber prober(&policy, options);
  TopKModel model = Example6Model();
  EXPECT_TRUE(prober.Run(&model, FixedTruth({1, 2})).status()
                  .IsInvalidArgument());
}

TEST(AdaptiveProberTest, PropagatesProbeFailure) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  ProbeFn failing = [](std::size_t) -> Result<double> {
    return Status::IoError("database unreachable");
  };
  EXPECT_TRUE(prober.Run(&model, failing).status().IsIoError());
}

// ----------- Greedy vs exhaustive-optimal policy on tiny instances --------

// Expectimax value of the optimal probing strategy: minimal expected number
// of probes to reach certainty >= t for top-1 selection.
double OptimalExpectedProbes(TopKModel* model, double t,
                             std::set<std::size_t> probed) {
  TopKModel::BestSet best =
      model->FindBestSet(1, CorrectnessMetric::kAbsolute, 100);
  if (best.expected_correctness >= t) return 0.0;
  if (probed.size() == model->num_databases()) return 0.0;
  double best_cost = 1e18;
  for (std::size_t i = 0; i < model->num_databases(); ++i) {
    if (probed.count(i)) continue;
    std::vector<stats::Atom> support = model->SupportOf(i);
    double cost = 1.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition cond(model, i, atom.value);
      std::set<std::size_t> next = probed;
      next.insert(i);
      cost += atom.prob * OptimalExpectedProbes(model, t, next);
    }
    best_cost = std::min(best_cost, cost);
  }
  return best_cost;
}

// Expected probes of a policy (expectimax over the policy's fixed choices).
double PolicyExpectedProbes(TopKModel* model, ProbingPolicy* policy, double t,
                            std::vector<bool> probed) {
  TopKModel::BestSet best =
      model->FindBestSet(1, CorrectnessMetric::kAbsolute, 100);
  if (best.expected_correctness >= t) return 0.0;
  if (std::count(probed.begin(), probed.end(), false) == 0) return 0.0;
  std::size_t i =
      policy->SelectDb(model, probed, Ctx(1, 100, t));
  std::vector<stats::Atom> support = model->SupportOf(i);
  double cost = 1.0;
  for (const stats::Atom& atom : support) {
    TopKModel::ScopedCondition cond(model, i, atom.value);
    std::vector<bool> next = probed;
    next[i] = true;
    cost += atom.prob * PolicyExpectedProbes(model, policy, t, next);
  }
  return cost;
}

class GreedyVsOptimalTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsOptimalTest, GreedyNearOptimalOnTinyInstances) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1315423911ULL);
  std::vector<RelevancyDistribution> rds;
  for (int i = 0; i < 3; ++i) {
    std::vector<stats::Atom> atoms;
    for (int a = 0; a < 3; ++a) {
      atoms.push_back(
          {std::floor(rng.Uniform(0, 10)) * 10, rng.Uniform(0.1, 1.0)});
    }
    rds.push_back(Rd(std::move(atoms)));
  }
  TopKModel model(std::move(rds));
  const double t = 0.9;

  TopKModel opt_model = model;
  double optimal = OptimalExpectedProbes(&opt_model, t, {});
  GreedyUsefulnessPolicy greedy;
  TopKModel greedy_model = model;
  double greedy_cost = PolicyExpectedProbes(&greedy_model, &greedy, t,
                                            std::vector<bool>(3, false));
  EXPECT_GE(greedy_cost + 1e-9, optimal);      // optimal is a lower bound
  EXPECT_LE(greedy_cost, optimal + 1.0 + 1e-9);  // and greedy is close
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsOptimalTest, ::testing::Range(1, 9));

// --------------------- policy/loop invariants on random instances ---------

// Random discrete model: `num_dbs` databases, 2-4 atoms each.
TopKModel RandomModel(stats::Rng* rng, int num_dbs) {
  std::vector<RelevancyDistribution> rds;
  for (int i = 0; i < num_dbs; ++i) {
    int atoms = 2 + static_cast<int>(rng->Uniform(0, 3));
    std::vector<stats::Atom> raw;
    for (int a = 0; a < atoms; ++a) {
      raw.push_back(
          {std::floor(rng->Uniform(0, 15)) * 10, rng->Uniform(0.05, 1.0)});
    }
    rds.push_back(Rd(std::move(raw)));
  }
  return TopKModel(std::move(rds));
}

std::vector<std::unique_ptr<ProbingPolicy>> AllPolicies() {
  std::vector<std::unique_ptr<ProbingPolicy>> policies;
  policies.push_back(std::make_unique<GreedyUsefulnessPolicy>());
  policies.push_back(std::make_unique<RandomProbingPolicy>(99));
  policies.push_back(std::make_unique<RoundRobinProbingPolicy>());
  policies.push_back(std::make_unique<MaxVarianceProbingPolicy>());
  policies.push_back(std::make_unique<MembershipEntropyPolicy>());
  policies.push_back(std::make_unique<StoppingProbabilityPolicy>());
  policies.push_back(std::make_unique<ExpectimaxProbingPolicy>(2));
  return policies;
}

TEST(ProbingPropertyTest, NoPolicyEverProbesADatabaseTwice) {
  stats::Rng rng(515151);
  for (auto& policy : AllPolicies()) {
    for (int trial = 0; trial < 4; ++trial) {
      const int num_dbs = 4;
      TopKModel model = RandomModel(&rng, num_dbs);
      std::vector<double> truths;
      for (int i = 0; i < num_dbs; ++i) {
        truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
      }
      AProOptions options;
      options.k = 2;
      options.threshold = 1.0;  // force a long probing run
      AdaptiveProber prober(policy.get(), options);
      auto result = prober.Run(&model, FixedTruth(truths));
      ASSERT_TRUE(result.ok()) << policy->name();
      // Termination: never more attempts than databases...
      EXPECT_LE(result->probe_order.size(),
                static_cast<std::size_t>(num_dbs))
          << policy->name();
      // ...and no database attempted twice.
      std::set<std::size_t> unique(result->probe_order.begin(),
                                   result->probe_order.end());
      EXPECT_EQ(unique.size(), result->probe_order.size())
          << policy->name();
      // Probing everything reaches certainty 1 >= any threshold.
      EXPECT_TRUE(result->reached_threshold) << policy->name();
    }
  }
}

TEST(ProbingPropertyTest, TotalCostIsTheSumOfPerProbeCosts) {
  stats::Rng rng(717171);
  for (auto& policy : AllPolicies()) {
    const int num_dbs = 4;
    TopKModel model = RandomModel(&rng, num_dbs);
    std::vector<double> truths;
    AProOptions options;
    options.k = 1;
    options.threshold = 1.0;
    for (int i = 0; i < num_dbs; ++i) {
      truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
      options.probe_costs.push_back(std::floor(rng.Uniform(1, 9)));
    }
    AdaptiveProber prober(policy.get(), options);
    auto result = prober.Run(&model, FixedTruth(truths));
    ASSERT_TRUE(result.ok()) << policy->name();
    ProbingContext context;
    context.probe_costs = &options.probe_costs;
    double expected_cost = 0.0;
    for (std::size_t db : result->probe_order) {
      expected_cost += context.CostOf(db);
    }
    EXPECT_DOUBLE_EQ(result->total_cost, expected_cost) << policy->name();
  }
}

TEST(ProbingPropertyTest, ClonesReproduceTheOriginalRun) {
  // Clone() must preserve behaviour — including RandomProbingPolicy's
  // generator state, which the batch serving paths rely on.
  stats::Rng rng(323232);
  for (auto& policy : AllPolicies()) {
    TopKModel model = RandomModel(&rng, 4);
    TopKModel copy = model;
    std::vector<double> truths;
    for (int i = 0; i < 4; ++i) {
      truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
    }
    std::unique_ptr<ProbingPolicy> clone = policy->Clone();
    EXPECT_EQ(clone->name(), policy->name());
    AProOptions options;
    options.k = 1;
    options.threshold = 1.0;
    AdaptiveProber original(policy.get(), options);
    AdaptiveProber cloned(clone.get(), options);
    auto a = original.Run(&model, FixedTruth(truths));
    auto b = cloned.Run(&copy, FixedTruth(truths));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->probe_order, b->probe_order) << policy->name();
    EXPECT_EQ(a->selected, b->selected) << policy->name();
  }
}

// ----------------------- speculative batch dispatch -----------------------

TEST(SpeculativeBatchTest, BatchOfOneIsTheSequentialLoop) {
  TopKModel a = Example6Model();
  TopKModel b = Example6Model();
  AProOptions sequential;
  sequential.k = 1;
  sequential.threshold = 0.9;
  sequential.record_trace = true;
  AProOptions batched = sequential;
  batched.speculative_batch = 1;
  ThreadPool pool(2);
  batched.pool = &pool;  // pool present but unused at batch size 1
  GreedyUsefulnessPolicy policy;
  auto seq = AdaptiveProber(&policy, sequential).Run(&a, FixedTruth({100, 130}));
  auto bat = AdaptiveProber(&policy, batched).Run(&b, FixedTruth({100, 130}));
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(seq->probe_order, bat->probe_order);
  EXPECT_EQ(seq->selected, bat->selected);
  EXPECT_DOUBLE_EQ(seq->expected_correctness, bat->expected_correctness);
  EXPECT_EQ(seq->trace.size(), bat->trace.size());
}

TEST(SpeculativeBatchTest, KeepsLoopInvariantsWithAndWithoutPool) {
  stats::Rng rng(454545);
  for (int with_pool = 0; with_pool < 2; ++with_pool) {
    ThreadPool pool(3);
    for (int trial = 0; trial < 4; ++trial) {
      const int num_dbs = 5;
      TopKModel model = RandomModel(&rng, num_dbs);
      std::vector<double> truths;
      for (int i = 0; i < num_dbs; ++i) {
        truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
      }
      AProOptions options;
      options.k = 2;
      options.threshold = 1.0;
      options.speculative_batch = 3;
      options.pool = with_pool == 1 ? &pool : nullptr;
      options.record_trace = true;
      StoppingProbabilityPolicy policy;
      AdaptiveProber prober(&policy, options);
      auto result = prober.Run(&model, FixedTruth(truths));
      ASSERT_TRUE(result.ok());
      std::set<std::size_t> unique(result->probe_order.begin(),
                                   result->probe_order.end());
      EXPECT_EQ(unique.size(), result->probe_order.size());
      EXPECT_LE(result->probe_order.size(),
                static_cast<std::size_t>(num_dbs));
      EXPECT_TRUE(result->reached_threshold);
      // Trace keeps its one-entry-per-attempt shape under batching.
      EXPECT_EQ(result->trace.size(), result->probe_order.size() + 1);
    }
  }
}

TEST(SpeculativeBatchTest, RespectsProbeBudgetMidBatch) {
  stats::Rng rng(616161);
  TopKModel model = RandomModel(&rng, 6);
  std::vector<double> truths{10, 20, 30, 40, 50, 60};
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.speculative_batch = 4;
  options.max_probes = 3;  // not a multiple of the batch size
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth(truths));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->num_probes(), 3);
}

TEST(SpeculativeBatchTest, TraceEntriesFollowObservationOrder) {
  // Regression: with speculative batching, trace entry i+1 must reflect the
  // model state right after merging the i-th observation — not the state at
  // the end of the round the probe was dispatched in. Replaying the
  // observations one by one on a model copy reconstructs the exact
  // trajectory the trace must have recorded.
  stats::Rng rng(929292);
  for (int trial = 0; trial < 3; ++trial) {
    const int num_dbs = 5;
    TopKModel model = RandomModel(&rng, num_dbs);
    TopKModel replay = model;
    std::vector<double> truths;
    for (int i = 0; i < num_dbs; ++i) {
      truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
    }
    AProOptions options;
    options.k = 2;
    options.threshold = 1.0;
    options.speculative_batch = 3;
    options.record_trace = true;
    StoppingProbabilityPolicy policy;
    AdaptiveProber prober(&policy, options);
    auto result = prober.Run(&model, FixedTruth(truths));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->trace.size(), result->probe_order.size() + 1);
    for (std::size_t i = 0; i <= result->probe_order.size(); ++i) {
      if (i > 0) {
        std::size_t db = result->probe_order[i - 1];
        replay.Observe(db, truths[db]);
      }
      TopKModel::BestSet best = replay.FindBestSet(
          options.k, options.metric, options.search_width);
      EXPECT_EQ(result->trace[i].databases, best.members)
          << "trial " << trial << " entry " << i;
      EXPECT_DOUBLE_EQ(result->trace[i].expected_correctness,
                       best.expected_correctness)
          << "trial " << trial << " entry " << i;
    }
  }
}

TEST(SpeculativeBatchTest, QueryTraceSpansEmitInObservationOrder) {
  // The structured spans must follow the same per-merge discipline: one
  // "probe" span per attempt, db ids in probe_order, and each span's
  // certainty_before continuing exactly where the previous merge ended —
  // across round boundaries too.
  stats::Rng rng(373737);
  const int num_dbs = 5;
  TopKModel model = RandomModel(&rng, num_dbs);
  std::vector<double> truths;
  for (int i = 0; i < num_dbs; ++i) {
    truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
  }
  obs::FakeClock clock(0, 1000);
  obs::QueryTracer tracer(&clock);
  std::unique_ptr<obs::QueryTrace> trace = tracer.StartTrace("spec batch");
  AProOptions options;
  options.k = 2;
  options.threshold = 1.0;
  options.speculative_batch = 3;
  options.trace = trace.get();
  options.clock = &clock;
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth(truths));
  ASSERT_TRUE(result.ok());

  auto spans = trace->SpansNamed("probe");
  ASSERT_EQ(spans.size(), result->probe_order.size());
  double prev_after = -1.0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(spans[i]->num("db", -1.0)),
              result->probe_order[i]);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(spans[i]->num("certainty_before", -2.0), prev_after);
    }
    prev_after = spans[i]->num("certainty_after", -2.0);
  }
  EXPECT_DOUBLE_EQ(prev_after, result->expected_correctness);
  auto stops = trace->SpansNamed("stop");
  ASSERT_EQ(stops.size(), 1u);
  EXPECT_DOUBLE_EQ(stops[0]->num("expected_correctness", -1.0),
                   result->expected_correctness);
  tracer.Finish(std::move(trace));
}

TEST(SpeculativeBatchTest, PooledDispatchMatchesInlineDispatch) {
  // The pool only changes *where* probes run; merge order is the policy's
  // selection order either way, so results must be identical.
  stats::Rng rng(818181);
  for (int trial = 0; trial < 3; ++trial) {
    TopKModel inline_model = RandomModel(&rng, 5);
    TopKModel pooled_model = inline_model;
    std::vector<double> truths;
    for (int i = 0; i < 5; ++i) {
      truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
    }
    AProOptions options;
    options.k = 2;
    options.threshold = 1.0;
    options.speculative_batch = 3;
    StoppingProbabilityPolicy policy;
    auto inline_run =
        AdaptiveProber(&policy, options).Run(&inline_model,
                                             FixedTruth(truths));
    ThreadPool pool(3);
    options.pool = &pool;
    auto pooled_run =
        AdaptiveProber(&policy, options).Run(&pooled_model,
                                             FixedTruth(truths));
    ASSERT_TRUE(inline_run.ok());
    ASSERT_TRUE(pooled_run.ok());
    EXPECT_EQ(inline_run->probe_order, pooled_run->probe_order);
    EXPECT_EQ(inline_run->selected, pooled_run->selected);
    EXPECT_DOUBLE_EQ(inline_run->expected_correctness,
                     pooled_run->expected_correctness);
  }
}

TEST(GreedyVsRandomTest, GreedyNeedsNoMoreProbesOnAverage) {
  stats::Rng rng(2024);
  double greedy_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RelevancyDistribution> rds;
    for (int i = 0; i < 4; ++i) {
      std::vector<stats::Atom> atoms;
      for (int a = 0; a < 2; ++a) {
        atoms.push_back(
            {std::floor(rng.Uniform(0, 12)) * 10, rng.Uniform(0.1, 1.0)});
      }
      rds.push_back(Rd(std::move(atoms)));
    }
    TopKModel model(std::move(rds));
    GreedyUsefulnessPolicy greedy;
    RoundRobinProbingPolicy round_robin;
    TopKModel m1 = model;
    greedy_total += PolicyExpectedProbes(&m1, &greedy, 0.95,
                                         std::vector<bool>(4, false));
    TopKModel m2 = model;
    random_total += PolicyExpectedProbes(&m2, &round_robin, 0.95,
                                         std::vector<bool>(4, false));
  }
  EXPECT_LE(greedy_total, random_total + 1e-9);
}

// ----------------------- parallel greedy scoring --------------------------

// The pooled scorer must pick the same database as the sequential loop at
// every probe state: the per-candidate clones run the identical
// floating-point computation and the argmax reduction is index-ordered.
TEST(ParallelGreedyTest, PoolSelectionMatchesSequential) {
  stats::Rng rng(777);
  ThreadPool pool(4);
  for (int trial = 0; trial < 5; ++trial) {
    const int num_dbs = 8;
    TopKModel model = RandomModel(&rng, num_dbs);
    ProbingContext sequential_context;
    sequential_context.k = 2;
    sequential_context.metric = CorrectnessMetric::kAbsolute;
    ProbingContext pooled_context = sequential_context;
    pooled_context.pool = &pool;
    std::vector<bool> probed(num_dbs, false);
    for (int step = 0; step < 4; ++step) {
      GreedyUsefulnessPolicy sequential;
      GreedyUsefulnessPolicy parallel;
      TopKModel sequential_model = model;
      TopKModel pooled_model = model;
      std::size_t want =
          sequential.SelectDb(&sequential_model, probed, sequential_context);
      std::size_t got =
          parallel.SelectDb(&pooled_model, probed, pooled_context);
      EXPECT_EQ(got, want) << "trial " << trial << " step " << step;
      model.Observe(want, std::floor(rng.Uniform(0, 15)) * 10);
      probed[want] = true;
    }
  }
}

// End-to-end: an APro run whose policy scores candidates on a pool yields
// exactly the sequential run's probe schedule and answer.
TEST(ParallelGreedyTest, AProRunMatchesSequential) {
  stats::Rng rng(4242);
  ThreadPool pool(3);
  for (int trial = 0; trial < 4; ++trial) {
    const int num_dbs = 6;
    TopKModel sequential_model = RandomModel(&rng, num_dbs);
    TopKModel pooled_model = sequential_model;
    std::vector<double> truths;
    for (int i = 0; i < num_dbs; ++i) {
      truths.push_back(std::floor(rng.Uniform(0, 15)) * 10);
    }
    AProOptions options;
    options.k = 2;
    options.threshold = 0.95;
    GreedyUsefulnessPolicy sequential_policy;
    AdaptiveProber sequential_prober(&sequential_policy, options);
    auto sequential_result =
        sequential_prober.Run(&sequential_model, FixedTruth(truths));
    ASSERT_TRUE(sequential_result.ok());

    options.pool = &pool;  // parallel candidate scoring, same schedule
    GreedyUsefulnessPolicy pooled_policy;
    AdaptiveProber pooled_prober(&pooled_policy, options);
    auto pooled_result = pooled_prober.Run(&pooled_model, FixedTruth(truths));
    ASSERT_TRUE(pooled_result.ok());

    EXPECT_EQ(pooled_result->probe_order, sequential_result->probe_order);
    EXPECT_EQ(pooled_result->selected, sequential_result->selected);
    EXPECT_EQ(pooled_result->expected_correctness,
              sequential_result->expected_correctness);
  }
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
