#include "core/probing.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace metaprobe {
namespace core {
namespace {

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

// Example 6 / Figures 12-13: db1 RD {50:.3, 100:.4, 150:.3},
// db2 RD {70:.4, 130:.6}; k=1, t=0.8.
TopKModel Example6Model() {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{50, 0.3}, {100, 0.4}, {150, 0.3}}));
  rds.push_back(Rd({{70, 0.4}, {130, 0.6}}));
  return TopKModel(std::move(rds));
}

ProbingContext Ctx(int k = 1, int width = 10, double threshold = 1.0) {
  ProbingContext context;
  context.k = k;
  context.search_width = width;
  context.threshold = threshold;
  return context;
}

ProbeFn FixedTruth(std::vector<double> truths) {
  return [truths](std::size_t db) -> Result<double> { return truths[db]; };
}

TEST(GreedyPolicyTest, PaperExample6UsefulnessComputation) {
  // Reconstructing Figure 13 by hand:
  //   probing db1: outcomes 50 -> usefulness 1, 150 -> 1,
  //                100 -> max(Pr(db2<100), Pr(db2>100)) = 0.6
  //   expected = .3*1 + .4*.6 + .3*1 = 0.84
  //   probing db2: outcomes 70 -> max(.3, .7) = .7, 130 -> max(.7, .3) = .7
  //   expected = 0.70
  // Greedy must pick db1.
  TopKModel model = Example6Model();
  GreedyUsefulnessPolicy policy;
  std::vector<bool> probed{false, false};
  std::size_t choice =
      policy.SelectDb(&model, probed, Ctx(1, 10));
  EXPECT_EQ(choice, 0u);
}

TEST(GreedyPolicyTest, ConditioningLeavesModelIntact) {
  TopKModel model = Example6Model();
  double before = model.PrExactTopSet({1});
  GreedyUsefulnessPolicy policy;
  std::vector<bool> probed{false, false};
  policy.SelectDb(&model, probed, Ctx(1, 10));
  EXPECT_NEAR(model.PrExactTopSet({1}), before, 1e-12);
}

TEST(GreedyPolicyTest, SkipsProbedDatabases) {
  TopKModel model = Example6Model();
  GreedyUsefulnessPolicy policy;
  std::vector<bool> probed{true, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10)),
            1u);
}

TEST(RandomPolicyTest, OnlyPicksUnprobed) {
  RandomProbingPolicy policy(7);
  TopKModel model = Example6Model();
  std::vector<bool> probed{false, true};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
              0u);
  }
}

TEST(RoundRobinPolicyTest, PicksLowestUnprobed) {
  RoundRobinProbingPolicy policy;
  TopKModel model = Example6Model();
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
            0u);
  probed[0] = true;
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
            1u);
}

TEST(MaxVariancePolicyTest, PicksWidestRd) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{99, 0.5}, {101, 0.5}}));   // stddev 1
  rds.push_back(Rd({{0, 0.5}, {200, 0.5}}));    // stddev 100
  TopKModel model(std::move(rds));
  MaxVarianceProbingPolicy policy;
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 4)),
            1u);
}

TEST(MembershipEntropyPolicyTest, PicksMostUncertainMember) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{500, 1.0}}));              // certain member (H ~ 0)
  rds.push_back(Rd({{90, 0.5}, {110, 0.5}}));   // contender, H ~ max
  rds.push_back(Rd({{1, 0.9}, {100, 0.1}}));    // mostly out
  TopKModel model(std::move(rds));
  MembershipEntropyPolicy policy;
  std::vector<bool> probed{false, false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(2, 10)), 1u);
}

TEST(MembershipEntropyPolicyTest, SkipsProbed) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{90, 0.5}, {110, 0.5}}));
  rds.push_back(Rd({{95, 0.5}, {105, 0.5}}));
  TopKModel model(std::move(rds));
  MembershipEntropyPolicy policy;
  std::vector<bool> probed{true, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10)), 1u);
}

TEST(StoppingProbabilityPolicyTest, PaperExample6PicksDb1) {
  // t = 0.8: probing db1 crosses t on outcomes 50 and 150 (prob 0.6);
  // probing db2 can never cross (both outcomes leave best E at 0.7).
  TopKModel model = Example6Model();
  StoppingProbabilityPolicy policy;
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10, 0.8)), 0u);
}

TEST(StoppingProbabilityPolicyTest, MaximizesCrossingChance) {
  // db0 {80:.5, 120:.5}, db1 {60:.8, 100:.2}; prior Pr(db0 top) = 0.9.
  // With t = 0.95: probing db1 stops w.p. 0.8 (outcome 60 -> certainty 1);
  // probing db0 stops w.p. 0.5 (outcome 120).
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{80, 0.5}, {120, 0.5}}));
  rds.push_back(Rd({{60, 0.8}, {100, 0.2}}));
  TopKModel model(std::move(rds));
  StoppingProbabilityPolicy policy;
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10, 0.95)), 1u);
}

TEST(ExpectimaxPolicyTest, PicksProbeMinimizingExpectedProbes) {
  // Example 6 state, t = 0.8: probing db1 finishes immediately with
  // probability 0.6 (expected total ~1.4 probes); probing db2 never
  // finishes in one step (expected total 2). Expectimax must pick db1.
  TopKModel model = Example6Model();
  ExpectimaxProbingPolicy policy(2);
  std::vector<bool> probed{false, false};
  EXPECT_EQ(policy.SelectDb(&model, probed, Ctx(1, 10, 0.8)), 0u);
}

TEST(ExpectimaxPolicyTest, DepthOneStillWorks) {
  TopKModel model = Example6Model();
  ExpectimaxProbingPolicy policy(1);
  std::vector<bool> probed{false, false};
  std::size_t choice = policy.SelectDb(&model, probed, Ctx(1, 10, 0.8));
  EXPECT_EQ(choice, 0u);
}

TEST(ExpectimaxPolicyTest, LeavesModelIntact) {
  TopKModel model = Example6Model();
  double before = model.PrExactTopSet({1});
  ExpectimaxProbingPolicy policy(3);
  std::vector<bool> probed{false, false};
  policy.SelectDb(&model, probed, Ctx(1, 10, 0.9));
  EXPECT_NEAR(model.PrExactTopSet({1}), before, 1e-12);
}

TEST(ExpectimaxPolicyTest, NameIncludesDepth) {
  EXPECT_EQ(ExpectimaxProbingPolicy(2).name(), "expectimax(depth=2)");
  EXPECT_EQ(ExpectimaxProbingPolicy(0).name(), "expectimax(depth=1)");
}

TEST(ExpectimaxPolicyTest, AgreesWithFullExpectimaxOnTinyInstances) {
  // With depth >= number of databases, the policy IS the optimal policy of
  // the paper's extended report on these instances.
  stats::Rng rng(777);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<RelevancyDistribution> rds;
    for (int i = 0; i < 3; ++i) {
      std::vector<stats::Atom> atoms;
      for (int a = 0; a < 2; ++a) {
        atoms.push_back(
            {std::floor(rng.Uniform(0, 10)) * 10, rng.Uniform(0.1, 1.0)});
      }
      rds.push_back(Rd(std::move(atoms)));
    }
    TopKModel model(std::move(rds));
    ExpectimaxProbingPolicy deep(3);
    std::vector<bool> probed(3, false);
    std::size_t choice = deep.SelectDb(&model, probed, Ctx(1, 100, 0.9));
    EXPECT_LT(choice, 3u);
  }
}

// ------------------------- heterogeneous probing costs (Section 5.2) -----

TEST(CostAwareProbingTest, StoppingPolicyPrefersCheapInformativeProbe) {
  // Two contenders with identical RDs (equally informative probes by
  // symmetry); db0 costs 10x as much to probe. The cost-aware stopping
  // policy must pick db1.
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{10, 0.5}, {100, 0.5}}));
  rds.push_back(Rd({{10, 0.5}, {100, 0.5}}));
  TopKModel model(std::move(rds));
  StoppingProbabilityPolicy policy;
  std::vector<bool> probed{false, false};
  std::vector<double> costs{10.0, 1.0};
  ProbingContext context = Ctx(1, 10, 0.95);
  context.probe_costs = &costs;
  EXPECT_EQ(policy.SelectDb(&model, probed, context), 1u);
  // With the cost skew reversed, the choice flips.
  costs = {1.0, 10.0};
  EXPECT_EQ(policy.SelectDb(&model, probed, context), 0u);
}

TEST(CostAwareProbingTest, TotalCostAccounted) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.probe_costs = {3.0, 5.0};
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 2);
  EXPECT_DOUBLE_EQ(result->total_cost, 8.0);
}

TEST(CostAwareProbingTest, UnitCostsEqualAttemptCount) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost,
                   static_cast<double>(result->num_probes()));
}

TEST(CostAwareProbingTest, MaxCostBudgetStopsTheLoop) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.probe_costs = {4.0, 4.0};
  options.max_cost = 4.0;  // one probe's worth
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 1);
  EXPECT_FALSE(result->reached_threshold);
}

TEST(CostAwareProbingTest, RejectsMismatchedCostVector) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.probe_costs = {1.0, 2.0, 3.0};  // three costs, two databases
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  EXPECT_TRUE(prober.Run(&model, FixedTruth({100, 130}))
                  .status()
                  .IsInvalidArgument());
}

TEST(GreedyUsefulnessTest, ExpectedUsefulnessIsAMartingale) {
  // Reproduction finding (see DESIGN.md): unless some probe outcome flips
  // the best answer set, the expected usefulness of EVERY probe equals the
  // prior certainty exactly — so the paper's greedy cannot distinguish
  // informative from useless probes in flip-free situations.
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{80, 0.5}, {120, 0.5}}));
  rds.push_back(Rd({{60, 0.5}, {100, 0.5}}));
  TopKModel model(std::move(rds));
  double prior = model.FindBestSet(1, CorrectnessMetric::kAbsolute, 10)
                     .expected_correctness;
  EXPECT_NEAR(prior, 0.75, 1e-9);
  for (std::size_t i = 0; i < 2; ++i) {
    const std::vector<stats::Atom> support = model.SupportOf(i);
    double usefulness = 0.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition cond(&model, i, atom.value);
      usefulness += atom.prob *
                    model.FindBestSet(1, CorrectnessMetric::kAbsolute, 10)
                        .expected_correctness;
    }
    EXPECT_NEAR(usefulness, prior, 1e-9) << "db " << i;
  }
}

TEST(AdaptiveProberTest, StopsImmediatelyWhenCertaintyMet) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  // RD-based certainty: Pr(db2 top) = .6*.7 + .4*.3 = 0.54 >= 0.5.
  options.threshold = 0.5;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 0);
  EXPECT_TRUE(result->reached_threshold);
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(result->expected_correctness, 0.54, 1e-9);
}

TEST(AdaptiveProberTest, ProbesUntilThreshold) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 0.9;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  // Truth: db1 = 100, db2 = 130 -> after probing db1 (greedy pick), the
  // certainty of db2 is Pr(db2 > 100) = 0.6... then db2 must be probed too.
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reached_threshold);
  EXPECT_GE(result->expected_correctness, 0.9);
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{1}));
  EXPECT_EQ(result->num_probes(), 2);
  EXPECT_EQ(result->probe_order, (std::vector<std::size_t>{0, 1}));
}

TEST(AdaptiveProberTest, ThresholdOneProbesEverythingAtWorst) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({150, 70}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reached_threshold);
  EXPECT_EQ(result->selected, (std::vector<std::size_t>{0}));
  EXPECT_NEAR(result->expected_correctness, 1.0, 1e-12);
}

TEST(AdaptiveProberTest, MaxProbesBudgetRespected) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.max_probes = 1;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_probes(), 1);
  EXPECT_FALSE(result->reached_threshold);
}

TEST(AdaptiveProberTest, TraceRecordsEveryStep) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  options.record_trace = true;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({100, 130}));
  ASSERT_TRUE(result.ok());
  // Entry 0 = RD-based answer (no probing), then one entry per probe.
  ASSERT_EQ(result->trace.size(),
            static_cast<std::size_t>(result->num_probes()) + 1);
  EXPECT_NEAR(result->trace[0].expected_correctness, 0.54, 1e-9);
  // Certainty of the reported answer never decreases... not guaranteed in
  // general, but holds on this example.
  EXPECT_GE(result->trace.back().expected_correctness,
            result->trace.front().expected_correctness);
}

TEST(AdaptiveProberTest, ProbeObservationsAreApplied) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  auto result = prober.Run(&model, FixedTruth({150, 70}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(model.rd(0).IsImpulse());
}

TEST(AdaptiveProberTest, RejectsBadArguments) {
  GreedyUsefulnessPolicy policy;
  AProOptions options;
  options.k = 0;
  AdaptiveProber prober(&policy, options);
  TopKModel model = Example6Model();
  EXPECT_TRUE(prober.Run(&model, FixedTruth({1, 2})).status()
                  .IsInvalidArgument());
}

TEST(AdaptiveProberTest, PropagatesProbeFailure) {
  TopKModel model = Example6Model();
  AProOptions options;
  options.k = 1;
  options.threshold = 1.0;
  GreedyUsefulnessPolicy policy;
  AdaptiveProber prober(&policy, options);
  ProbeFn failing = [](std::size_t) -> Result<double> {
    return Status::IoError("database unreachable");
  };
  EXPECT_TRUE(prober.Run(&model, failing).status().IsIoError());
}

// ----------- Greedy vs exhaustive-optimal policy on tiny instances --------

// Expectimax value of the optimal probing strategy: minimal expected number
// of probes to reach certainty >= t for top-1 selection.
double OptimalExpectedProbes(TopKModel* model, double t,
                             std::set<std::size_t> probed) {
  TopKModel::BestSet best =
      model->FindBestSet(1, CorrectnessMetric::kAbsolute, 100);
  if (best.expected_correctness >= t) return 0.0;
  if (probed.size() == model->num_databases()) return 0.0;
  double best_cost = 1e18;
  for (std::size_t i = 0; i < model->num_databases(); ++i) {
    if (probed.count(i)) continue;
    std::vector<stats::Atom> support = model->SupportOf(i);
    double cost = 1.0;
    for (const stats::Atom& atom : support) {
      TopKModel::ScopedCondition cond(model, i, atom.value);
      std::set<std::size_t> next = probed;
      next.insert(i);
      cost += atom.prob * OptimalExpectedProbes(model, t, next);
    }
    best_cost = std::min(best_cost, cost);
  }
  return best_cost;
}

// Expected probes of a policy (expectimax over the policy's fixed choices).
double PolicyExpectedProbes(TopKModel* model, ProbingPolicy* policy, double t,
                            std::vector<bool> probed) {
  TopKModel::BestSet best =
      model->FindBestSet(1, CorrectnessMetric::kAbsolute, 100);
  if (best.expected_correctness >= t) return 0.0;
  if (std::count(probed.begin(), probed.end(), false) == 0) return 0.0;
  std::size_t i =
      policy->SelectDb(model, probed, Ctx(1, 100, t));
  std::vector<stats::Atom> support = model->SupportOf(i);
  double cost = 1.0;
  for (const stats::Atom& atom : support) {
    TopKModel::ScopedCondition cond(model, i, atom.value);
    std::vector<bool> next = probed;
    next[i] = true;
    cost += atom.prob * PolicyExpectedProbes(model, policy, t, next);
  }
  return cost;
}

class GreedyVsOptimalTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsOptimalTest, GreedyNearOptimalOnTinyInstances) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1315423911ULL);
  std::vector<RelevancyDistribution> rds;
  for (int i = 0; i < 3; ++i) {
    std::vector<stats::Atom> atoms;
    for (int a = 0; a < 3; ++a) {
      atoms.push_back(
          {std::floor(rng.Uniform(0, 10)) * 10, rng.Uniform(0.1, 1.0)});
    }
    rds.push_back(Rd(std::move(atoms)));
  }
  TopKModel model(std::move(rds));
  const double t = 0.9;

  TopKModel opt_model = model;
  double optimal = OptimalExpectedProbes(&opt_model, t, {});
  GreedyUsefulnessPolicy greedy;
  TopKModel greedy_model = model;
  double greedy_cost = PolicyExpectedProbes(&greedy_model, &greedy, t,
                                            std::vector<bool>(3, false));
  EXPECT_GE(greedy_cost + 1e-9, optimal);      // optimal is a lower bound
  EXPECT_LE(greedy_cost, optimal + 1.0 + 1e-9);  // and greedy is close
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsOptimalTest, ::testing::Range(1, 9));

TEST(GreedyVsRandomTest, GreedyNeedsNoMoreProbesOnAverage) {
  stats::Rng rng(2024);
  double greedy_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RelevancyDistribution> rds;
    for (int i = 0; i < 4; ++i) {
      std::vector<stats::Atom> atoms;
      for (int a = 0; a < 2; ++a) {
        atoms.push_back(
            {std::floor(rng.Uniform(0, 12)) * 10, rng.Uniform(0.1, 1.0)});
      }
      rds.push_back(Rd(std::move(atoms)));
    }
    TopKModel model(std::move(rds));
    GreedyUsefulnessPolicy greedy;
    RoundRobinProbingPolicy round_robin;
    TopKModel m1 = model;
    greedy_total += PolicyExpectedProbes(&m1, &greedy, 0.95,
                                         std::vector<bool>(4, false));
    TopKModel m2 = model;
    random_total += PolicyExpectedProbes(&m2, &round_robin, 0.95,
                                         std::vector<bool>(4, false));
  }
  EXPECT_LE(greedy_total, random_total + 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
