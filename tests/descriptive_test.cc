#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace metaprobe {
namespace stats {
namespace {

TEST(DescriptiveTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(DescriptiveTest, VarianceBasics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), 1.0);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(Percentile(xs, 12.5), 15);
}

TEST(DescriptiveTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({50, 10, 30, 20, 40}, 50), 30);
}

TEST(DescriptiveTest, PercentileClampsP) {
  std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(xs, -10), 1);
  EXPECT_DOUBLE_EQ(Percentile(xs, 200), 3);
}

TEST(DescriptiveTest, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.Add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats rs;
  rs.Add(-5.0);
  rs.Add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), -5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 25.0);
}

}  // namespace
}  // namespace stats
}  // namespace metaprobe
