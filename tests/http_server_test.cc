// End-to-end tier for the introspection surface: the dependency-free HTTP
// server (dispatch, query-string stripping, error statuses, shutdown) and
// the IntrospectionService wired to a live Metasearcher + MetasearchServer
// stack — a raw-socket client scrapes /metrics, /statusz, /tracez and
// /healthz and asserts on the payloads, exactly the way tools/check.sh
// does against the example binary.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metasearcher.h"
#include "index/inverted_index.h"
#include "obs/clock.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serving/introspection.h"
#include "serving/metasearch_server.h"

namespace metaprobe {
namespace {

// ------------------------------------------------- raw-socket client

// Sends `raw` to 127.0.0.1:port and returns everything the server writes
// until it closes the connection (the server always answers
// `Connection: close`). Empty string on connect failure.
std::string RawRequest(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::write(fd, raw.data() + sent, raw.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

// The response body (everything after the blank line).
std::string Body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

// ------------------------------------------------------- HttpServer

TEST(HttpServerTest, ServesHandlerOnEphemeralPort) {
  obs::HttpServer server;
  server.Handle("/ping", [](const std::string&) {
    return obs::HttpResponse{200, "text/plain; charset=utf-8", "pong\n"};
  });
  Result<int> port = server.Start("127.0.0.1", 0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(port.ValueOrDie(), 0);
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.port(), port.ValueOrDie());

  const std::string response = Get(port.ValueOrDie(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(Body(response), "pong\n");

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(HttpServerTest, StripsQueryStringBeforeDispatch) {
  obs::HttpServer server;
  std::string seen_path;
  server.Handle("/metrics", [&seen_path](const std::string& path) {
    seen_path = path;
    return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok"};
  });
  Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  const std::string response =
      Get(port.ValueOrDie(), "/metrics?format=prometheus&x=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(seen_path, "/metrics");
}

TEST(HttpServerTest, UnknownPathIs404) {
  obs::HttpServer server;
  server.Handle("/known", [](const std::string&) {
    return obs::HttpResponse{};
  });
  Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  const std::string response = Get(port.ValueOrDie(), "/unknown");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST(HttpServerTest, NonGetMethodIs405) {
  obs::HttpServer server;
  server.Handle("/metrics", [](const std::string&) {
    return obs::HttpResponse{};
  });
  Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  const std::string response = RawRequest(
      port.ValueOrDie(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
}

TEST(HttpServerTest, MalformedRequestLineIs400) {
  obs::HttpServer server;
  Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  const std::string response =
      RawRequest(port.ValueOrDie(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos);
}

TEST(HttpServerTest, DoubleStartIsRejected) {
  obs::HttpServer server;
  Result<int> port = server.Start();
  ASSERT_TRUE(port.ok());
  Result<int> again = server.Start();
  EXPECT_FALSE(again.ok());
}

// ------------------------------------------- introspection end-to-end

std::shared_ptr<core::LocalDatabase> MakeDb(const std::string& name,
                                            int pattern) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < 200; ++d) {
    std::vector<std::string> terms;
    if (pattern == 0) {
      terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                         : std::vector<std::string>{"pad", "fill"};
    } else {
      terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                         : std::vector<std::string>{"beta", "fill"};
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<core::LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

core::Query MakeQuery(std::vector<std::string> terms) {
  core::Query q;
  q.terms = std::move(terms);
  return q;
}

// The full serving + observability stack behind the four endpoints, pumped
// deterministically (zero workers, manual RunOne).
class IntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    searcher_ = std::make_unique<core::Metasearcher>();
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("corr", 0)).ok());
    ASSERT_TRUE(searcher_->AddLocalDatabase(MakeDb("anti", 1)).ok());
    std::vector<core::Query> training;
    for (int i = 0; i < 30; ++i) {
      training.push_back(MakeQuery({"alpha", "beta"}));
      training.push_back(MakeQuery({"alpha", "pad"}));
      training.push_back(MakeQuery({"pad", "fill"}));
    }
    ASSERT_TRUE(searcher_->Train(training).ok());

    tracer_ = std::make_unique<obs::QueryTracer>();
    searcher_->SetTracer(tracer_.get());
    health_ = std::make_unique<obs::DbHealthTracker>(
        std::vector<std::string>{"corr", "anti"});
    searcher_->SetHealthTracker(health_.get());

    serving::MetasearchServerOptions options;
    options.num_workers = 0;
    options.default_k = 1;
    server_ = std::make_unique<serving::MetasearchServer>(searcher_.get(),
                                                          options);
    slo_ = std::make_unique<obs::SloMonitor>(
        "server_latency",
        server_->metrics().GetHistogram("metaprobe_server_latency_seconds"));
    slo_->RegisterMetrics(&server_->metrics());

    serving::IntrospectionService::Components components;
    components.searcher = searcher_.get();
    components.server = server_.get();
    components.tracer = tracer_.get();
    components.health = health_.get();
    components.slos = {slo_.get()};
    introspection_ =
        std::make_unique<serving::IntrospectionService>(components);
    introspection_->RegisterEndpoints(&http_);
    Result<int> port = http_.Start("127.0.0.1", 0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = port.ValueOrDie();
  }

  // One served request end to end, so stats and health windows are warm.
  void ServeOne() {
    serving::ServeRequest request;
    request.query = MakeQuery({"alpha", "beta"});
    request.threshold = 0.9999;  // force real probes
    serving::Ticket ticket = server_->Submit(std::move(request));
    ASSERT_TRUE(ticket.accepted());
    ASSERT_TRUE(server_->RunOne());
    ASSERT_TRUE(ticket.response.get().status.ok());
  }

  std::unique_ptr<core::Metasearcher> searcher_;
  std::unique_ptr<obs::QueryTracer> tracer_;
  std::unique_ptr<obs::DbHealthTracker> health_;
  std::unique_ptr<serving::MetasearchServer> server_;
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<serving::IntrospectionService> introspection_;
  obs::HttpServer http_;
  int port_ = 0;
};

TEST_F(IntrospectionTest, HealthzAnswersOk) {
  const std::string response = Get(port_, "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(Body(response), "ok\n");
}

TEST_F(IntrospectionTest, MetricsScrapeCarriesHealthAndSloSeries) {
  ServeOne();
  const std::string response = Get(port_, "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = Body(response);
  // Searcher registry: per-database health gauges for every backend.
  EXPECT_NE(body.find("metaprobe_db_health_score{db=\"corr\"}"),
            std::string::npos);
  EXPECT_NE(body.find("metaprobe_db_health_score{db=\"anti\"}"),
            std::string::npos);
  EXPECT_NE(body.find("metaprobe_db_unhealthy_total 0"), std::string::npos);
  // Server registry: serving counters and the SLO gauges riding with them.
  EXPECT_NE(body.find("metaprobe_server_requests_total"), std::string::npos);
  EXPECT_NE(body.find("metaprobe_slo_latency_p99_seconds"
                      "{slo=\"server_latency\"}"),
            std::string::npos);
  EXPECT_NE(body.find("metaprobe_slo_burn_rate{slo=\"server_latency\"}"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);
}

TEST_F(IntrospectionTest, StatuszReportsEveryComponent) {
  ServeOne();
  const std::string response = Get(port_, "/statusz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  const std::string body = Body(response);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');
  EXPECT_NE(body.find("\"build\":{\"compiler\":"), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"server\":{\"accepted\":1"), std::string::npos);
  EXPECT_NE(body.find("\"queue_depth\":0"), std::string::npos);
  EXPECT_NE(body.find("\"tenants\":[{\"tenant\":\"default\""),
            std::string::npos);
  EXPECT_NE(body.find("\"searcher\":{\"queries_served\":"),
            std::string::npos);
  EXPECT_NE(body.find("\"slos\":[{\"name\":\"server_latency\""),
            std::string::npos);
  // One health row per backend, with the fields the scoreboard renders.
  EXPECT_NE(body.find("\"name\":\"corr\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"anti\""), std::string::npos);
  EXPECT_NE(body.find("\"health_score\":"), std::string::npos);
  EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);
}

TEST_F(IntrospectionTest, TracezListsRecentAndSlowTraces) {
  tracer_->set_slow_threshold_seconds(1e-9);  // everything samples as slow
  ServeOne();
  const std::string response = Get(port_, "/tracez");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"slow_threshold_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"recent\":[{\"trace_id\":"), std::string::npos);
  EXPECT_NE(body.find("\"slow\":[{\"trace_id\":"), std::string::npos);
  EXPECT_NE(body.find("\"duration_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"num_spans\":"), std::string::npos);
}

TEST_F(IntrospectionTest, UnknownIntrospectionPathIs404) {
  const std::string response = Get(port_, "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

}  // namespace
}  // namespace metaprobe
