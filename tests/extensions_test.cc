// Tests for the extension surfaces: the document-similarity relevancy
// definition, the coverage-similarity estimator, the CORI comparator, and
// probabilistic consistency laws of the TopKModel.

#include <memory>

#include <cmath>
#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/estimator.h"
#include "core/metasearcher.h"
#include "core/related_selectors.h"
#include "core/relevancy_definition.h"

namespace metaprobe {
namespace core {
namespace {

std::shared_ptr<LocalDatabase> MakeDb(const std::string& name,
                                      int both_every, int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms{"filler"};
    if (d % both_every == 0) {
      terms.push_back("alpha");
      terms.push_back("beta");
    } else if (d % 2 == 0) {
      terms.push_back("alpha");
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

// ------------------------------------------------- RelevancyDefinition

TEST(RelevancyDefinitionTest, Names) {
  EXPECT_STREQ(
      RelevancyDefinitionName(RelevancyDefinition::kDocumentFrequency),
      "document-frequency");
  EXPECT_STREQ(
      RelevancyDefinitionName(RelevancyDefinition::kDocumentSimilarity),
      "document-similarity");
}

TEST(RelevancyDefinitionTest, FrequencyProbeCountsMatches) {
  auto db = MakeDb("db", 4, 100);
  auto result = ProbeRelevancy(*db, MakeQuery({"alpha", "beta"}),
                               RelevancyDefinition::kDocumentFrequency);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 25.0);  // every 4th doc has both
}

TEST(RelevancyDefinitionTest, SimilarityProbeReturnsBestCosine) {
  auto db = MakeDb("db", 4, 100);
  auto result = ProbeRelevancy(*db, MakeQuery({"alpha", "beta"}),
                               RelevancyDefinition::kDocumentSimilarity);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(*result, 0.0);
  EXPECT_LE(*result, 1.0 + 1e-9);
}

TEST(RelevancyDefinitionTest, SimilarityProbeZeroWhenNoMatch) {
  auto db = MakeDb("db", 4, 50);
  auto result = ProbeRelevancy(*db, MakeQuery({"zebra"}),
                               RelevancyDefinition::kDocumentSimilarity);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 0.0);
}

TEST(RelevancyDefinitionTest, MetasearcherServesSimilarityDefinition) {
  MetasearcherOptions options;
  options.relevancy_definition = RelevancyDefinition::kDocumentSimilarity;
  options.query_class.estimate_threshold = 0.8;
  Metasearcher searcher(options);
  EXPECT_EQ(searcher.estimator().name(), "coverage-similarity");
  ASSERT_TRUE(searcher.AddLocalDatabase(MakeDb("rich", 3, 150)).ok());
  ASSERT_TRUE(searcher.AddLocalDatabase(MakeDb("sparse", 50, 150)).ok());
  std::vector<Query> training(30, MakeQuery({"alpha", "beta"}));
  ASSERT_TRUE(searcher.Train(training).ok());
  auto report = searcher.Select(MakeQuery({"alpha", "beta"}), 1, 0.5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->databases.size(), 1u);
}

// ------------------------------------------- CoverageSimilarityEstimator

TEST(CoverageSimilarityTest, FullCoverageIsOne) {
  StatSummary summary("db", 1000);
  summary.SetDocumentFrequency("a", 100);
  summary.SetDocumentFrequency("b", 200);
  CoverageSimilarityEstimator estimator;
  EXPECT_NEAR(estimator.Estimate(summary, MakeQuery({"a", "b"})), 1.0, 1e-12);
}

TEST(CoverageSimilarityTest, NoCoverageIsZero) {
  StatSummary summary("db", 1000);
  CoverageSimilarityEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(summary, MakeQuery({"x", "y"})), 0.0);
}

TEST(CoverageSimilarityTest, PartialCoverageBetweenZeroAndOne) {
  StatSummary summary("db", 1000);
  summary.SetDocumentFrequency("a", 100);
  CoverageSimilarityEstimator estimator;
  double partial = estimator.Estimate(summary, MakeQuery({"a", "missing"}));
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(CoverageSimilarityTest, RareCoveredTermWeighsMore) {
  // Covering a rare keyword should count for more of the estimate than
  // covering a ubiquitous one.
  StatSummary rare_covered("db1", 1000);
  rare_covered.SetDocumentFrequency("rare", 2);
  StatSummary common_covered("db2", 1000);
  common_covered.SetDocumentFrequency("common", 900);
  CoverageSimilarityEstimator estimator;
  double with_rare =
      estimator.Estimate(rare_covered, MakeQuery({"rare", "common"}));
  double with_common =
      estimator.Estimate(common_covered, MakeQuery({"rare", "common"}));
  EXPECT_GT(with_rare, with_common);
}

TEST(CoverageSimilarityTest, EdgeCases) {
  StatSummary summary("db", 0);
  CoverageSimilarityEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(summary, MakeQuery({"a"})), 0.0);
  StatSummary ok("db", 10);
  EXPECT_DOUBLE_EQ(estimator.Estimate(ok, MakeQuery({})), 0.0);
}

// ----------------------------------------------------------------- CORI

class CoriTest : public ::testing::Test {
 protected:
  CoriTest() {
    summaries_.emplace_back("big", 2000);
    summaries_.back().SetDocumentFrequency("cancer", 500);
    summaries_.back().SetDocumentFrequency("common", 1800);
    summaries_.emplace_back("small", 500);
    summaries_.back().SetDocumentFrequency("cancer", 400);
    summaries_.back().SetDocumentFrequency("common", 450);
    summaries_.emplace_back("offtopic", 1000);
    summaries_.back().SetDocumentFrequency("common", 900);
    for (const StatSummary& s : summaries_) ptrs_.push_back(&s);
  }

  std::vector<StatSummary> summaries_;
  std::vector<const StatSummary*> ptrs_;
};

TEST_F(CoriTest, CollectionFrequency) {
  CoriSelector cori(ptrs_);
  EXPECT_EQ(cori.CollectionFrequency("cancer"), 2u);
  EXPECT_EQ(cori.CollectionFrequency("common"), 3u);
  EXPECT_EQ(cori.CollectionFrequency("absent"), 0u);
}

TEST_F(CoriTest, ScoresFavorTopicalDatabases) {
  CoriSelector cori(ptrs_);
  std::vector<double> scores = cori.Score(MakeQuery({"cancer"}));
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0], scores[2]);  // big beats offtopic on "cancer"
  EXPECT_GT(scores[1], scores[2]);  // small beats offtopic too
}

TEST_F(CoriTest, UbiquitousTermsCarryNoSignal) {
  // "common" appears in every database: its I component is
  // log(3.5/3)/log(4), tiny, so scores cluster near the default belief.
  CoriSelector cori(ptrs_);
  std::vector<double> scores = cori.Score(MakeQuery({"common"}));
  for (double s : scores) {
    EXPECT_GT(s, 0.39);
    EXPECT_LT(s, 0.55);
  }
}

TEST_F(CoriTest, ScoresBoundedByBeliefRange) {
  CoriSelector cori(ptrs_);
  for (auto terms : {std::vector<std::string>{"cancer"},
                     std::vector<std::string>{"cancer", "common"},
                     std::vector<std::string>{"absent"}}) {
    for (double s : cori.Score(MakeQuery(terms))) {
      EXPECT_GE(s, 0.4 - 1e-12);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST_F(CoriTest, EmptyInputs) {
  CoriSelector cori(ptrs_);
  EXPECT_TRUE(cori.Score(MakeQuery({})).empty() ||
              cori.Score(MakeQuery({})).size() == 3);
  CoriSelector empty({});
  EXPECT_TRUE(empty.Score(MakeQuery({"x"})).empty());
}

// --------------------------------------- TopKModel probability laws

RelevancyDistribution Rd(std::vector<stats::Atom> atoms) {
  RelevancyDistribution rd;
  rd.dist = stats::DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
  return rd;
}

TEST(TopKModelLawsTest, TotalProbabilityOverConditioning) {
  // Law of total probability: sum_v Pr(X_i = v) Pr(S top | X_i = v)
  // must equal Pr(S top), for every database i and candidate set S.
  stats::Rng rng(4242);
  std::vector<RelevancyDistribution> rds;
  for (int i = 0; i < 5; ++i) {
    std::vector<stats::Atom> atoms;
    for (int a = 0; a < 3; ++a) {
      atoms.push_back(
          {std::floor(rng.Uniform(0, 15)) * 7, rng.Uniform(0.1, 1.0)});
    }
    rds.push_back(Rd(std::move(atoms)));
  }
  TopKModel model(std::move(rds));
  for (std::size_t i = 0; i < model.num_databases(); ++i) {
    for (std::vector<std::size_t> set :
         {std::vector<std::size_t>{0}, std::vector<std::size_t>{1, 3},
          std::vector<std::size_t>{0, 2, 4}}) {
      double prior = model.PrExactTopSet(set);
      double total = 0.0;
      const std::vector<stats::Atom> support = model.SupportOf(i);
      for (const stats::Atom& atom : support) {
        TopKModel::ScopedCondition cond(&model, i, atom.value);
        total += atom.prob * model.PrExactTopSet(set);
      }
      EXPECT_NEAR(total, prior, 1e-10) << "db " << i;
    }
  }
}

TEST(TopKModelLawsTest, MembershipIsMonotoneInValueShift) {
  // Shifting one database's RD upward cannot decrease its membership
  // probability.
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{40, 0.5}, {80, 0.5}}));
  rds.push_back(Rd({{50, 0.5}, {70, 0.5}}));
  rds.push_back(Rd({{30, 0.5}, {90, 0.5}}));
  TopKModel base(rds);
  std::vector<RelevancyDistribution> shifted_rds = rds;
  shifted_rds[1] = Rd({{60, 0.5}, {80, 0.5}});
  TopKModel shifted(shifted_rds);
  for (int k : {1, 2}) {
    EXPECT_GE(shifted.MembershipProbabilities(k)[1] + 1e-12,
              base.MembershipProbabilities(k)[1])
        << "k=" << k;
  }
}

TEST(TopKModelLawsTest, ObservingTruthNeverContradictsSupport) {
  std::vector<RelevancyDistribution> rds;
  rds.push_back(Rd({{40, 0.5}, {80, 0.5}}));
  rds.push_back(Rd({{50, 1.0}}));
  TopKModel model(std::move(rds));
  model.Observe(0, 80);
  EXPECT_NEAR(model.PrExactTopSet({0}), 1.0, 1e-9);
  model.Observe(0, 40);  // re-observation overwrites
  EXPECT_NEAR(model.PrExactTopSet({1}), 1.0, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
