#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/metasearcher.h"

namespace metaprobe {
namespace core {
namespace {

std::shared_ptr<LocalDatabase> MakeDb(const std::string& name, int shift,
                                      int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms{"base"};
    if ((d + shift) % 2 == 0) terms.push_back("alpha");
    if ((d + shift) % 3 == 0) terms.push_back("beta");
    if ((d + shift) % 5 == 0) terms.push_back("gamma");
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbs_ = {MakeDb("db-a", 0, 120), MakeDb("db-b", 1, 150),
            MakeDb("db-c", 2, 90)};
    searcher_ = std::make_unique<Metasearcher>();
    for (const auto& db : dbs_) {
      ASSERT_TRUE(searcher_->AddLocalDatabase(db).ok());
    }
    std::vector<Query> training;
    for (int i = 0; i < 20; ++i) {
      training.push_back(MakeQuery({"alpha", "beta"}));
      training.push_back(MakeQuery({"alpha", "gamma"}));
      training.push_back(MakeQuery({"beta", "gamma"}));
    }
    ASSERT_TRUE(searcher_->Train(training).ok());
  }

  std::vector<std::shared_ptr<LocalDatabase>> dbs_;
  std::unique_ptr<Metasearcher> searcher_;
};

std::vector<std::shared_ptr<HiddenWebDatabase>> AsHidden(
    const std::vector<std::shared_ptr<LocalDatabase>>& dbs) {
  return {dbs.begin(), dbs.end()};
}

TEST_F(ModelIoTest, SaveRequiresTraining) {
  Metasearcher untrained;
  std::ostringstream os;
  EXPECT_TRUE(untrained.SaveTrainedModel(os).IsFailedPrecondition());
}

TEST_F(ModelIoTest, RoundTripPreservesBehaviour) {
  std::ostringstream os;
  ASSERT_TRUE(searcher_->SaveTrainedModel(os).ok());
  std::istringstream is(os.str());
  auto loaded = Metasearcher::LoadTrainedModel(is, AsHidden(dbs_));
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Identical estimates, models and selections for a spread of queries.
  for (auto terms : {std::vector<std::string>{"alpha", "beta"},
                     std::vector<std::string>{"alpha", "gamma"},
                     std::vector<std::string>{"beta", "gamma"}}) {
    Query q = MakeQuery(terms);
    EXPECT_EQ(searcher_->EstimateAll(q), (*loaded)->EstimateAll(q));
    TopKModel original = searcher_->BuildModel(q).ValueOrDie();
    TopKModel restored = (*loaded)->BuildModel(q).ValueOrDie();
    ASSERT_EQ(original.num_databases(), restored.num_databases());
    for (std::size_t i = 0; i < original.num_databases(); ++i) {
      EXPECT_EQ(original.rd(i), restored.rd(i)) << "db " << i;
    }
    auto report_a = searcher_->Select(q, 1, 0.9);
    auto report_b = (*loaded)->Select(q, 1, 0.9);
    ASSERT_TRUE(report_a.ok() && report_b.ok());
    EXPECT_EQ(report_a->databases, report_b->databases);
    EXPECT_DOUBLE_EQ(report_a->expected_correctness,
                     report_b->expected_correctness);
  }
}

TEST_F(ModelIoTest, RoundTripIsByteStable) {
  std::ostringstream first, second;
  ASSERT_TRUE(searcher_->SaveTrainedModel(first).ok());
  std::istringstream is(first.str());
  auto loaded = Metasearcher::LoadTrainedModel(is, AsHidden(dbs_));
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE((*loaded)->SaveTrainedModel(second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(ModelIoTest, LoadedSearcherIsTrained) {
  std::ostringstream os;
  ASSERT_TRUE(searcher_->SaveTrainedModel(os).ok());
  std::istringstream is(os.str());
  auto loaded = Metasearcher::LoadTrainedModel(is, AsHidden(dbs_));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->trained());
  EXPECT_EQ((*loaded)->ed_table()->total_samples(),
            searcher_->ed_table()->total_samples());
  EXPECT_EQ((*loaded)->summary(0).DocumentFrequency("alpha"),
            searcher_->summary(0).DocumentFrequency("alpha"));
}

TEST_F(ModelIoTest, RejectsWrongDatabaseCount) {
  std::ostringstream os;
  ASSERT_TRUE(searcher_->SaveTrainedModel(os).ok());
  std::istringstream is(os.str());
  std::vector<std::shared_ptr<HiddenWebDatabase>> two{dbs_[0], dbs_[1]};
  EXPECT_TRUE(Metasearcher::LoadTrainedModel(is, two)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ModelIoTest, RejectsMismatchedDatabaseName) {
  std::ostringstream os;
  ASSERT_TRUE(searcher_->SaveTrainedModel(os).ok());
  std::istringstream is(os.str());
  auto impostor = MakeDb("impostor", 0, 120);
  std::vector<std::shared_ptr<HiddenWebDatabase>> swapped{impostor, dbs_[1],
                                                          dbs_[2]};
  EXPECT_TRUE(Metasearcher::LoadTrainedModel(is, swapped)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ModelIoTest, RejectsGarbageInput) {
  std::istringstream garbage("not a model file\n");
  EXPECT_FALSE(Metasearcher::LoadTrainedModel(garbage, AsHidden(dbs_)).ok());
}

TEST_F(ModelIoTest, RejectsTruncatedInput) {
  std::ostringstream os;
  ASSERT_TRUE(searcher_->SaveTrainedModel(os).ok());
  std::string payload = os.str();
  std::istringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_FALSE(
      Metasearcher::LoadTrainedModel(truncated, AsHidden(dbs_)).ok());
}

TEST_F(ModelIoTest, RejectsUnsupportedVersion) {
  std::ostringstream os;
  ASSERT_TRUE(searcher_->SaveTrainedModel(os).ok());
  std::string payload = os.str();
  payload.replace(payload.find("metaprobe-model 1"),
                  std::string("metaprobe-model 1").size(),
                  "metaprobe-model 9");
  std::istringstream is(payload);
  EXPECT_TRUE(Metasearcher::LoadTrainedModel(is, AsHidden(dbs_))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ModelIoTest, CustomEstimatorRefusesToSerialize) {
  Metasearcher custom;
  for (const auto& db : dbs_) ASSERT_TRUE(custom.AddLocalDatabase(db).ok());
  ASSERT_TRUE(
      custom.SetEstimator(std::make_unique<MinFrequencyEstimator>()).ok());
  std::vector<Query> training(10, MakeQuery({"alpha", "beta"}));
  ASSERT_TRUE(custom.Train(training).ok());
  std::ostringstream os;
  EXPECT_TRUE(custom.SaveTrainedModel(os).IsNotImplemented());
}

TEST(ErrorDistributionRestoreTest, RoundTrip) {
  ErrorDistribution original;
  for (double e : {-0.8, -0.8, 0.0, 0.3, 1.4, 7.0}) {
    original.AddObservation(e);
  }
  const stats::Histogram& h = original.histogram();
  std::vector<double> counts;
  for (std::size_t c = 0; c < h.num_cells(); ++c) {
    counts.push_back(h.count(c));
  }
  auto restored = ErrorDistribution::Restore(DefaultErrorBinEdges(), counts,
                                             original.sample_count());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->sample_count(), original.sample_count());
  EXPECT_EQ(restored->ToDistribution(), original.ToDistribution());
}

TEST(ErrorDistributionRestoreTest, RejectsBadCounts) {
  EXPECT_FALSE(
      ErrorDistribution::Restore(DefaultErrorBinEdges(), {1.0, 2.0}, 3).ok());
  std::vector<double> negative(10, 0.0);
  negative[3] = -1.0;
  EXPECT_FALSE(
      ErrorDistribution::Restore(DefaultErrorBinEdges(), negative, 1).ok());
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
