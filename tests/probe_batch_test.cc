// Equivalence tests for the batched probe path: batching may only
// amortize overhead, never change a single probed value, a learned
// table, or a golden standard.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/flaky_database.h"
#include "core/hidden_web_database.h"
#include "core/metasearcher.h"
#include "core/relevancy_definition.h"
#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "eval/golden.h"
#include "eval/testbed.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace {

std::shared_ptr<core::LocalDatabase> MakeDatabase(std::uint64_t seed) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "probe-batch-db";
  spec.num_docs = 600;
  spec.mixture = {{"oncology", 1.0}, {"cardiology", 0.5}};
  spec.seed = seed;
  return std::make_shared<core::LocalDatabase>(
      spec.name, std::move(generator.Generate(spec)->index));
}

std::vector<core::Query> MixedQueries() {
  std::vector<core::Query> queries;
  for (std::vector<std::string> terms :
       {std::vector<std::string>{"cancer"},
        std::vector<std::string>{"cancer", "breast"},
        std::vector<std::string>{"heart", "arteri"},
        std::vector<std::string>{"tumor", "biopsi", "cancer"},
        std::vector<std::string>{"cancer", "cancer", "breast"},  // duplicate
        std::vector<std::string>{"zzz-unknown-term"},
        std::vector<std::string>{"cancer", "zzz-unknown-term"}}) {
    core::Query query;
    query.terms = std::move(terms);
    queries.push_back(std::move(query));
  }
  return queries;
}

TEST(ProbingBatchTest, CountConjunctiveBatchMatchesSequential) {
  auto db = MakeDatabase(31);
  const index::InvertedIndex& idx = db->index_for_summaries();
  std::vector<std::vector<std::string>> term_lists;
  for (const core::Query& q : MixedQueries()) term_lists.push_back(q.terms);
  term_lists.push_back({});  // empty list counts zero, matching sequential
  std::vector<std::uint64_t> batched = idx.CountConjunctiveBatch(term_lists);
  ASSERT_EQ(batched.size(), term_lists.size());
  for (std::size_t i = 0; i < term_lists.size(); ++i) {
    EXPECT_EQ(batched[i], idx.CountConjunctive(term_lists[i])) << "query " << i;
  }
}

TEST(ProbingBatchTest, LocalProbeBatchMatchesProbeRelevancy) {
  for (core::RelevancyDefinition definition :
       {core::RelevancyDefinition::kDocumentFrequency,
        core::RelevancyDefinition::kDocumentSimilarity}) {
    auto db = MakeDatabase(32);
    const std::vector<core::Query> queries = MixedQueries();
    auto batched = db->ProbeBatch(queries, definition);
    ASSERT_TRUE(batched.ok()) << batched.status();
    ASSERT_EQ(batched->size(), queries.size());
    EXPECT_EQ(db->queries_served(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto sequential = core::ProbeRelevancy(*db, queries[i], definition);
      ASSERT_TRUE(sequential.ok());
      EXPECT_EQ((*batched)[i], *sequential) << "query " << i;
    }
  }
}

TEST(ProbingBatchTest, ProbeBatchRejectsEmptyQuery) {
  auto db = MakeDatabase(33);
  std::vector<core::Query> queries = MixedQueries();
  queries.emplace_back();  // empty query is an error, as in CountMatches
  EXPECT_TRUE(db->ProbeBatch(queries,
                             core::RelevancyDefinition::kDocumentFrequency)
                  .status()
                  .IsInvalidArgument());
}

TEST(ProbingBatchTest, DefaultProbeBatchLoopsThePrimitives) {
  // FlakyDatabase does not override ProbeBatch, so the base-class loop
  // runs — and per-probe failure injection still applies.
  auto inner = MakeDatabase(34);
  const std::vector<core::Query> queries = MixedQueries();
  core::FlakyDatabase reliable(inner, 0.0, 5);
  auto batched = reliable.ProbeBatch(
      queries, core::RelevancyDefinition::kDocumentFrequency);
  ASSERT_TRUE(batched.ok()) << batched.status();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto direct = core::ProbeRelevancy(
        *inner, queries[i], core::RelevancyDefinition::kDocumentFrequency);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ((*batched)[i], *direct) << "query " << i;
  }

  core::FlakyDatabase broken(inner, 1.0, 5);
  EXPECT_FALSE(broken
                   .ProbeBatch(queries,
                               core::RelevancyDefinition::kDocumentFrequency)
                   .ok());
  EXPECT_GT(broken.failures_injected(), 0u);
}

TEST(ProbingBatchTest, BatchedTrainingMatchesSequentialByteForByte) {
  eval::TestbedOptions testbed_options;
  testbed_options.train_queries_per_term_count = 60;
  testbed_options.test_queries_per_term_count = 10;
  testbed_options.seed = 17;
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status();

  auto train = [&](std::size_t batch_size) -> std::string {
    core::MetasearcherOptions options;
    options.ed_learner.max_samples_per_type = 25;  // exercise the caps
    options.ed_learner.probe_batch_size = batch_size;
    core::Metasearcher searcher(options);
    for (std::size_t i = 0; i < testbed->num_databases(); ++i) {
      EXPECT_TRUE(
          searcher.AddDatabase(testbed->databases[i], testbed->summaries[i])
              .ok());
    }
    EXPECT_TRUE(searcher.Train(testbed->train_queries).ok());
    std::ostringstream os;
    EXPECT_TRUE(searcher.SaveTrainedModel(os).ok());
    return os.str();
  };

  const std::string sequential = train(1);
  // Both a large batch and an odd chunk size that straddles the trace.
  EXPECT_EQ(train(128), sequential);
  EXPECT_EQ(train(7), sequential);
}

TEST(ConcurrencyBatchTest, PooledCountConjunctiveBatchMatchesSequential) {
  auto db = MakeDatabase(41);
  const index::InvertedIndex& idx = db->index_for_summaries();
  std::vector<std::vector<std::string>> term_lists;
  for (const core::Query& q : MixedQueries()) term_lists.push_back(q.terms);
  // Pad the batch well past the chunk size so the fan-out engages.
  stats::Rng rng(5);
  const std::vector<std::string> pool_terms = {"cancer", "breast",  "tumor",
                                               "heart",  "arteri",  "biopsi",
                                               "screen", "diabetes"};
  for (int i = 0; i < 120; ++i) {
    std::vector<std::string> terms;
    for (std::uint64_t t = 1 + rng.UniformInt(3); t > 0; --t) {
      terms.push_back(pool_terms[rng.UniformInt(pool_terms.size())]);
    }
    term_lists.push_back(std::move(terms));
  }
  const std::vector<std::uint64_t> sequential =
      idx.CountConjunctiveBatch(term_lists);
  ThreadPool pool(4);
  const std::vector<std::uint64_t> pooled =
      idx.CountConjunctiveBatch(term_lists, &pool);
  EXPECT_EQ(pooled, sequential);
  EXPECT_GT(pool.tasks_executed(), 0u);
}

TEST(ConcurrencyBatchTest, PooledProbeBatchMatchesSequential) {
  // A LocalDatabase with an installed batch pool must answer ProbeBatch
  // byte-identically to the sequential path, for both relevancy
  // definitions.
  for (core::RelevancyDefinition definition :
       {core::RelevancyDefinition::kDocumentFrequency,
        core::RelevancyDefinition::kDocumentSimilarity}) {
    auto db = MakeDatabase(42);
    std::vector<core::Query> queries;
    for (int copy = 0; copy < 12; ++copy) {
      for (core::Query& q : MixedQueries()) queries.push_back(std::move(q));
    }
    const auto sequential = db->ProbeBatch(queries, definition);
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    ThreadPool pool(4);
    db->set_batch_pool(&pool);
    const auto pooled = db->ProbeBatch(queries, definition);
    db->set_batch_pool(nullptr);
    ASSERT_TRUE(pooled.ok()) << pooled.status();
    EXPECT_EQ(*pooled, *sequential);
    EXPECT_GT(pool.tasks_executed(), 0u);
  }
}

TEST(ConcurrencyBatchTest, PooledGoldenBuildMatchesSerial) {
  eval::TestbedOptions testbed_options;
  testbed_options.train_queries_per_term_count = 10;
  testbed_options.test_queries_per_term_count = 40;
  testbed_options.seed = 23;
  auto testbed = eval::BuildHealthTestbed(testbed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status();

  for (core::RelevancyDefinition definition :
       {core::RelevancyDefinition::kDocumentFrequency,
        core::RelevancyDefinition::kDocumentSimilarity}) {
    auto serial = eval::GoldenStandard::Build(
        testbed->database_ptrs(), testbed->test_queries, definition);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ThreadPool pool(4);
    auto pooled = eval::GoldenStandard::Build(
        testbed->database_ptrs(), testbed->test_queries, definition, &pool);
    ASSERT_TRUE(pooled.ok()) << pooled.status();
    ASSERT_EQ(pooled->num_queries(), serial->num_queries());
    ASSERT_EQ(pooled->num_databases(), serial->num_databases());
    for (std::size_t q = 0; q < serial->num_queries(); ++q) {
      for (std::size_t d = 0; d < serial->num_databases(); ++d) {
        EXPECT_EQ(pooled->Relevancy(q, d), serial->Relevancy(q, d))
            << "query " << q << " db " << d;
      }
    }
  }
}

}  // namespace
}  // namespace metaprobe
