// Tests for the evaluation harness: testbeds, the sampling-size study and
// the experiment helpers, plus the logging utility.

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "eval/experiment.h"
#include "eval/sampling_study.h"
#include "eval/testbed.h"

namespace metaprobe {
namespace eval {
namespace {

TestbedOptions SmallOptions() {
  TestbedOptions options;
  options.train_queries_per_term_count = 80;
  options.test_queries_per_term_count = 40;
  options.seed = 99;
  return options;
}

TEST(TestbedTest, HealthTestbedDeterministicForSeed) {
  auto a = BuildHealthTestbed(SmallOptions());
  auto b = BuildHealthTestbed(SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_databases(), b->num_databases());
  for (std::size_t i = 0; i < a->num_databases(); ++i) {
    EXPECT_EQ(a->databases[i]->size(), b->databases[i]->size());
    EXPECT_EQ(a->summaries[i].database_size(),
              b->summaries[i].database_size());
  }
  ASSERT_EQ(a->train_queries.size(), b->train_queries.size());
  for (std::size_t q = 0; q < a->train_queries.size(); ++q) {
    EXPECT_EQ(a->train_queries[q].terms, b->train_queries[q].terms);
  }
}

TEST(TestbedTest, SummarySizesAreDistorted) {
  auto testbed = BuildHealthTestbed(SmallOptions());
  ASSERT_TRUE(testbed.ok());
  int distorted = 0;
  for (std::size_t i = 0; i < testbed->num_databases(); ++i) {
    if (testbed->summaries[i].database_size() !=
        testbed->databases[i]->size()) {
      ++distorted;
    }
  }
  // The advertised-size distortion must actually bite on most databases.
  EXPECT_GT(distorted, 15);
}

TEST(TestbedTest, DistortionCanBeDisabled) {
  TestbedOptions options = SmallOptions();
  options.summary_size_distortion = 0.0;
  auto testbed = BuildHealthTestbed(options);
  ASSERT_TRUE(testbed.ok());
  for (std::size_t i = 0; i < testbed->num_databases(); ++i) {
    EXPECT_EQ(testbed->summaries[i].database_size(),
              testbed->databases[i]->size());
  }
}

TEST(TestbedTest, TrainAndTestDisjoint) {
  auto testbed = BuildHealthTestbed(SmallOptions());
  ASSERT_TRUE(testbed.ok());
  std::set<std::string> train_keys;
  for (const core::Query& q : testbed->train_queries) {
    train_keys.insert(core::QueryKey(q));
  }
  for (const core::Query& q : testbed->test_queries) {
    EXPECT_FALSE(train_keys.count(core::QueryKey(q))) << q.raw;
  }
}

TEST(TestbedTest, DatabasePtrsAligned) {
  auto testbed = BuildHealthTestbed(SmallOptions());
  ASSERT_TRUE(testbed.ok());
  auto ptrs = testbed->database_ptrs();
  ASSERT_EQ(ptrs.size(), testbed->num_databases());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(ptrs[i], testbed->databases[i].get());
  }
}

TEST(SamplingStudyTest, ProducesGoodnessPerDatabase) {
  TestbedOptions options;
  options.train_queries_per_term_count = 400;
  options.test_queries_per_term_count = 10;
  options.seed = 7;
  auto testbed = BuildNewsgroupTestbed(options);
  ASSERT_TRUE(testbed.ok());

  SamplingStudyOptions study;
  study.sample_sizes = {20, 50};
  study.repetitions = 5;
  study.query_class.estimate_threshold = 30;
  auto results = RunSamplingStudy(*testbed, study);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), testbed->num_databases());
  for (const DbGoodness& g : *results) {
    ASSERT_EQ(g.avg_goodness.size(), study.sample_sizes.size());
    for (double p : g.avg_goodness) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(SamplingStudyTest, RejectsDegenerateOptions) {
  TestbedOptions options;
  options.train_queries_per_term_count = 20;
  options.test_queries_per_term_count = 5;
  auto testbed = BuildNewsgroupTestbed(options);
  ASSERT_TRUE(testbed.ok());
  SamplingStudyOptions study;
  study.sample_sizes.clear();
  EXPECT_TRUE(RunSamplingStudy(*testbed, study).status().IsInvalidArgument());
  study.sample_sizes = {10};
  study.repetitions = 0;
  EXPECT_TRUE(RunSamplingStudy(*testbed, study).status().IsInvalidArgument());
}

TEST(ExperimentTest, TrainedWorldEvaluations) {
  TestbedOptions options = SmallOptions();
  auto world = BuildTrainedHealthWorld(options);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->num_test_queries(), 80u);

  CorrectnessScores baseline = EvaluateBaseline(*world, 1);
  EXPECT_GE(baseline.avg_absolute, 0.0);
  EXPECT_LE(baseline.avg_absolute, 1.0);
  EXPECT_DOUBLE_EQ(baseline.avg_absolute, baseline.avg_partial);  // k=1

  CorrectnessScores rd =
      EvaluateRdBased(*world, 1, core::CorrectnessMetric::kAbsolute);
  EXPECT_GE(rd.avg_absolute, 0.0);
  EXPECT_LE(rd.avg_absolute, 1.0);

  core::StoppingProbabilityPolicy policy;
  auto trace = EvaluateProbingTrace(
      *world, 1, core::CorrectnessMetric::kAbsolute, &policy, 2, 20);
  ASSERT_EQ(trace.size(), 3u);
  // Zero-probe entry must match the RD-based method on the same subsample.
  EXPECT_GE(trace[0].avg_absolute, 0.0);

  auto sweep = EvaluateThresholdSweep(
      *world, 1, core::CorrectnessMetric::kAbsolute, &policy, {0.7, 0.9}, 20);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_LE(sweep[0].avg_probes, sweep[1].avg_probes);
  EXPECT_DOUBLE_EQ(sweep[0].reached_fraction, 1.0);
}

TEST(LoggingTest, ThresholdFiltersRecords) {
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  // Below-threshold records must not crash and produce no visible effect;
  // we can at least verify the threshold round-trips.
  METAPROBE_LOG(Info) << "suppressed";
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  METAPROBE_LOG(Debug) << "emitted to stderr in debug mode";
  SetLogThreshold(original);
}

}  // namespace
}  // namespace eval
}  // namespace metaprobe
