#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/summary.h"
#include "index/inverted_index.h"
#include "stats/random.h"

namespace metaprobe {
namespace core {
namespace {

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  q.raw = "";
  return q;
}

// ------------------------------------------------------------- StatSummary

TEST(StatSummaryTest, SetAndGet) {
  StatSummary summary("db1", 20000);
  summary.SetDocumentFrequency("breast", 2000);
  EXPECT_EQ(summary.database_name(), "db1");
  EXPECT_EQ(summary.database_size(), 20000u);
  EXPECT_EQ(summary.DocumentFrequency("breast"), 2000u);
  EXPECT_EQ(summary.DocumentFrequency("unknown"), 0u);
  EXPECT_EQ(summary.num_terms(), 1u);
}

TEST(StatSummaryTest, OverwriteDf) {
  StatSummary summary("db", 10);
  summary.SetDocumentFrequency("x", 1);
  summary.SetDocumentFrequency("x", 5);
  EXPECT_EQ(summary.DocumentFrequency("x"), 5u);
  EXPECT_EQ(summary.num_terms(), 1u);
}

TEST(StatSummaryTest, FromIndexMatchesTrueDfs) {
  index::InvertedIndex::Builder builder;
  builder.AddDocument({"breast", "cancer"});
  builder.AddDocument({"breast", "feeding"});
  builder.AddDocument({"heart"});
  index::InvertedIndex index = std::move(builder).Build().ValueOrDie();
  StatSummary summary = StatSummary::FromIndex("db", index);
  EXPECT_EQ(summary.database_size(), 3u);
  EXPECT_EQ(summary.DocumentFrequency("breast"), 2u);
  EXPECT_EQ(summary.DocumentFrequency("cancer"), 1u);
  EXPECT_EQ(summary.DocumentFrequency("heart"), 1u);
  EXPECT_EQ(summary.num_terms(), 4u);
}

TEST(StatSummaryTest, FromIndexSampledFullRateIsExact) {
  index::InvertedIndex::Builder builder;
  for (int i = 0; i < 50; ++i) {
    builder.AddDocument(i % 2 == 0
                            ? std::vector<std::string>{"even", "num"}
                            : std::vector<std::string>{"odd", "num"});
  }
  index::InvertedIndex index = std::move(builder).Build().ValueOrDie();
  stats::Rng rng(1);
  StatSummary sampled = StatSummary::FromIndexSampled("db", index, 1.0, &rng);
  EXPECT_EQ(sampled.DocumentFrequency("even"), 25u);
  EXPECT_EQ(sampled.DocumentFrequency("num"), 50u);
}

TEST(StatSummaryTest, FromIndexSampledApproximatesDfs) {
  index::InvertedIndex::Builder builder;
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::string> terms{"common"};
    if (i % 4 == 0) terms.push_back("quarter");
    builder.AddDocument(terms);
  }
  index::InvertedIndex index = std::move(builder).Build().ValueOrDie();
  stats::Rng rng(7);
  StatSummary sampled = StatSummary::FromIndexSampled("db", index, 0.2, &rng);
  // Scaled-back estimates should be within ~25% of truth for these dfs.
  EXPECT_NEAR(sampled.DocumentFrequency("common"), 2000.0, 120.0);
  EXPECT_NEAR(sampled.DocumentFrequency("quarter"), 500.0, 125.0);
  // Never exceeds the database size.
  EXPECT_LE(sampled.DocumentFrequency("common"), 2000u);
}

// ----------------------------------------- TermIndependenceEstimator (Eq 1)

TEST(TermIndependenceTest, PaperFigure2WorkedExample) {
  // Figure 2 / Example 1: db1 and db2 each hold 20,000 documents.
  StatSummary db1("db1", 20000);
  db1.SetDocumentFrequency("breast", 2000);
  db1.SetDocumentFrequency("cancer", 10000);
  StatSummary db2("db2", 20000);
  db2.SetDocumentFrequency("breast", 2600);
  db2.SetDocumentFrequency("cancer", 5000);

  TermIndependenceEstimator estimator;
  Query q = MakeQuery({"breast", "cancer"});
  // r_hat(db1) = 20000 * (2000/20000) * (10000/20000) = 1000.
  EXPECT_DOUBLE_EQ(estimator.Estimate(db1, q), 1000.0);
  // r_hat(db2) = 20000 * (2600/20000) * (5000/20000) = 650.
  EXPECT_DOUBLE_EQ(estimator.Estimate(db2, q), 650.0);
}

TEST(TermIndependenceTest, SingleTermIsItsDf) {
  StatSummary db("db", 100);
  db.SetDocumentFrequency("x", 40);
  TermIndependenceEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(db, MakeQuery({"x"})), 40.0);
}

TEST(TermIndependenceTest, UnknownTermZerosEstimate) {
  StatSummary db("db", 100);
  db.SetDocumentFrequency("x", 40);
  TermIndependenceEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(db, MakeQuery({"x", "missing"})), 0.0);
}

TEST(TermIndependenceTest, EmptyQueryIsZero) {
  StatSummary db("db", 100);
  TermIndependenceEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(db, MakeQuery({})), 0.0);
}

TEST(TermIndependenceTest, EmptyDatabaseIsZero) {
  StatSummary db("db", 0);
  TermIndependenceEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(db, MakeQuery({"x"})), 0.0);
}

TEST(TermIndependenceTest, MoreTermsShrinkEstimate) {
  StatSummary db("db", 1000);
  db.SetDocumentFrequency("a", 500);
  db.SetDocumentFrequency("b", 500);
  db.SetDocumentFrequency("c", 500);
  TermIndependenceEstimator estimator;
  double two = estimator.Estimate(db, MakeQuery({"a", "b"}));
  double three = estimator.Estimate(db, MakeQuery({"a", "b", "c"}));
  EXPECT_DOUBLE_EQ(two, 250.0);
  EXPECT_DOUBLE_EQ(three, 125.0);
}

TEST(TermIndependenceTest, NameIsStable) {
  EXPECT_EQ(TermIndependenceEstimator().name(), "term-independence");
}

// ----------------------------------------------------- Other estimators

TEST(MinFrequencyTest, ReturnsRarestTermDf) {
  StatSummary db("db", 1000);
  db.SetDocumentFrequency("a", 500);
  db.SetDocumentFrequency("b", 30);
  MinFrequencyEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.Estimate(db, MakeQuery({"a", "b"})), 30.0);
  EXPECT_DOUBLE_EQ(estimator.Estimate(db, MakeQuery({"a", "missing"})), 0.0);
}

TEST(MinFrequencyTest, IsUpperBoundOfIndependence) {
  StatSummary db("db", 1000);
  db.SetDocumentFrequency("a", 400);
  db.SetDocumentFrequency("b", 100);
  Query q = MakeQuery({"a", "b"});
  EXPECT_GE(MinFrequencyEstimator().Estimate(db, q),
            TermIndependenceEstimator().Estimate(db, q));
}

TEST(BlendedTest, AlphaZeroIsIndependence) {
  StatSummary db("db", 1000);
  db.SetDocumentFrequency("a", 400);
  db.SetDocumentFrequency("b", 100);
  Query q = MakeQuery({"a", "b"});
  EXPECT_NEAR(BlendedEstimator(0.0).Estimate(db, q),
              TermIndependenceEstimator().Estimate(db, q), 1e-9);
}

TEST(BlendedTest, AlphaOneIsMinFrequency) {
  StatSummary db("db", 1000);
  db.SetDocumentFrequency("a", 400);
  db.SetDocumentFrequency("b", 100);
  Query q = MakeQuery({"a", "b"});
  EXPECT_NEAR(BlendedEstimator(1.0).Estimate(db, q),
              MinFrequencyEstimator().Estimate(db, q), 1e-9);
}

TEST(BlendedTest, IntermediateAlphaBetweenBounds) {
  StatSummary db("db", 1000);
  db.SetDocumentFrequency("a", 400);
  db.SetDocumentFrequency("b", 100);
  Query q = MakeQuery({"a", "b"});
  double mid = BlendedEstimator(0.5).Estimate(db, q);
  EXPECT_GT(mid, TermIndependenceEstimator().Estimate(db, q));
  EXPECT_LT(mid, MinFrequencyEstimator().Estimate(db, q));
}

TEST(BlendedTest, AlphaClampedAndNamed) {
  EXPECT_EQ(BlendedEstimator(0.5).name(), "blended(alpha=0.50)");
  StatSummary db("db", 100);
  db.SetDocumentFrequency("a", 50);
  Query q = MakeQuery({"a"});
  EXPECT_NEAR(BlendedEstimator(7.0).Estimate(db, q),
              BlendedEstimator(1.0).Estimate(db, q), 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
