// Deadline tier: the Deadline primitive, its propagation through the APro
// loop (degraded, never-error answers), and the ProbeBatch cancellation
// point. The property at the heart of this file: a deadline may only cut
// probing at a probe boundary, so replaying the reported probe_order
// against a fresh model reproduces the returned answer bit-for-bit — there
// is no such thing as a partially-applied observation.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/deadline.h"
#include "core/metasearcher.h"
#include "core/probing.h"
#include "core/relevancy_definition.h"
#include "obs/clock.h"

namespace metaprobe {
namespace core {
namespace {

// ------------------------------------------------------ Deadline primitive

TEST(DeadlineTest, DefaultIsInactive) {
  Deadline none = Deadline::None();
  EXPECT_FALSE(none.active());
  EXPECT_FALSE(none.expired());
  EXPECT_EQ(none.remaining_ns(), 0u);
}

TEST(DeadlineTest, AfterCountsDownAndExpires) {
  obs::FakeClock clock(1000);
  Deadline deadline = Deadline::After(&clock, 500);
  EXPECT_TRUE(deadline.active());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ns(), 500u);
  clock.Advance(499);
  EXPECT_FALSE(deadline.expired());
  clock.Advance(1);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ns(), 0u);
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  obs::FakeClock clock(1000);
  Deadline deadline = Deadline::After(&clock, 0);
  EXPECT_TRUE(deadline.active());
  EXPECT_TRUE(deadline.expired());
}

TEST(DeadlineTest, ZeroBudgetAtClockZeroStaysActive) {
  // A clock reading 0 would make `now + 0` collide with the "inactive"
  // encoding; the cutoff shifts to 1ns so the deadline still registers as
  // active and expires on the very next tick.
  obs::FakeClock clock(0);
  Deadline deadline = Deadline::After(&clock, 0);
  EXPECT_TRUE(deadline.active());
  clock.Advance(1);
  EXPECT_TRUE(deadline.expired());
}

// -------------------------------------------------- deterministic testbed

// The deterministic three-database world of metasearcher_test.cc.
std::shared_ptr<LocalDatabase> MakeDb(const std::string& name, int pattern,
                                      int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    switch (pattern) {
      case 0:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                           : std::vector<std::string>{"pad", "fill"};
        break;
      case 1:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                           : std::vector<std::string>{"beta", "fill"};
        break;
      default:
        if (d % 4 == 0) terms = {"alpha", "beta"};
        else if (d % 4 == 1) terms = {"alpha", "pad"};
        else if (d % 4 == 2) terms = {"beta", "pad"};
        else terms = {"pad", "fill"};
        break;
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

std::vector<Query> TrainingQueries() {
  std::vector<Query> queries;
  for (int i = 0; i < 30; ++i) {
    queries.push_back(MakeQuery({"alpha", "beta"}));
    queries.push_back(MakeQuery({"alpha", "fill"}));
    queries.push_back(MakeQuery({"alpha", "pad"}));
    queries.push_back(MakeQuery({"beta", "pad"}));
    queries.push_back(MakeQuery({"pad", "fill"}));
  }
  return queries;
}

class DeadlinePropagationTest : public ::testing::Test {
 protected:
  std::unique_ptr<Metasearcher> MakeTrained(MetasearcherOptions options = {}) {
    auto searcher = std::make_unique<Metasearcher>(std::move(options));
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("corr", 0, 200)).ok());
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("anti", 1, 200)).ok());
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("mix", 2, 200)).ok());
    EXPECT_TRUE(searcher->Train(TrainingQueries()).ok());
    return searcher;
  }

  /// Replays `report`'s probe order against a freshly built model and
  /// asserts the reported answer is exactly what the replay derives —
  /// every probe fully applied, nothing else observed.
  void ExpectReplayMatches(const Metasearcher& searcher, const Query& query,
                           int k, const SelectionReport& report) {
    Result<TopKModel> model_result = searcher.BuildModel(query);
    ASSERT_TRUE(model_result.ok());
    TopKModel model = std::move(model_result).ValueOrDie();
    for (std::size_t db : report.probe_order) {
      Result<double> truth =
          ProbeRelevancy(searcher.database(db), query,
                         searcher.options().relevancy_definition);
      ASSERT_TRUE(truth.ok());
      model.Observe(db, *truth);
    }
    TopKModel::BestSet best =
        model.FindBestSet(k, searcher.options().metric,
                          searcher.options().search_width);
    EXPECT_EQ(best.members, report.databases);
    EXPECT_DOUBLE_EQ(best.expected_correctness, report.expected_correctness);
  }
};

// ------------------------------------------------- propagation properties

TEST_F(DeadlinePropagationTest, InactiveDeadlineMatchesDeadlineFreeSelect) {
  auto searcher = MakeTrained();
  Query q = MakeQuery({"alpha", "beta"});
  auto plain = searcher->Select(q, 1, 0.999);
  auto with_none = searcher->Select(q, 1, 0.999, Deadline::None());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_none.ok());
  EXPECT_EQ(plain->databases, with_none->databases);
  EXPECT_EQ(plain->probe_order, with_none->probe_order);
  EXPECT_DOUBLE_EQ(plain->expected_correctness,
                   with_none->expected_correctness);
  EXPECT_FALSE(plain->degraded);
  EXPECT_FALSE(with_none->degraded);
}

TEST_F(DeadlinePropagationTest, ExpiredAtStartEqualsZeroProbeBudget) {
  auto searcher = MakeTrained();
  Query q = MakeQuery({"alpha", "beta"});

  obs::FakeClock clock(1000);
  Deadline expired{&clock, 1};  // long past
  ASSERT_TRUE(expired.expired());
  auto report = searcher->Select(q, 2, 0.9999, expired);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->degraded);
  EXPECT_TRUE(report->probe_order.empty());
  EXPECT_FALSE(report->reached_threshold);

  // The estimate-only reference: the same run with a zero probe budget and
  // no deadline at all. The probe oracle must never be consulted.
  Result<TopKModel> model_result = searcher->BuildModel(q);
  ASSERT_TRUE(model_result.ok());
  TopKModel model = std::move(model_result).ValueOrDie();
  AProOptions options;
  options.k = 2;
  options.threshold = 0.9999;
  options.metric = searcher->options().metric;
  options.search_width = searcher->options().search_width;
  options.max_probes = 0;
  StoppingProbabilityPolicy policy;
  AdaptiveProber prober(&policy, options);
  ProbeFn never = [](std::size_t) -> Result<double> {
    ADD_FAILURE() << "zero-budget run issued a probe";
    return Status::Internal("unreachable");
  };
  auto zero_budget = prober.Run(&model, never);
  ASSERT_TRUE(zero_budget.ok());
  EXPECT_EQ(report->databases, zero_budget->selected);
  EXPECT_DOUBLE_EQ(report->expected_correctness,
                   zero_budget->expected_correctness);
}

TEST_F(DeadlinePropagationTest, CutAtAnyPointReplaysToSameAnswer) {
  auto searcher = MakeTrained();
  Query q = MakeQuery({"alpha", "beta"});

  // Sweep cutoffs across the whole run: with the clock auto-stepping on
  // every read, each budget expires at a different probe boundary. For
  // every one of them the answer must be OK (never an error) and must be
  // exactly reproducible from the reported probe order.
  for (std::uint64_t budget_ns :
       {std::uint64_t{1}, std::uint64_t{500}, std::uint64_t{1500},
        std::uint64_t{4000}, std::uint64_t{20000}, std::uint64_t{500000}}) {
    obs::FakeClock clock(0, 100);  // 100ns per clock read
    Deadline deadline = Deadline::After(&clock, budget_ns);
    auto report = searcher->Select(q, 1, 0.9999, deadline);
    ASSERT_TRUE(report.ok()) << "budget " << budget_ns << ": "
                             << report.status().ToString();
    if (report->degraded) {
      EXPECT_FALSE(report->reached_threshold) << "budget " << budget_ns;
    }
    ExpectReplayMatches(*searcher, q, 1, *report);
  }
}

TEST_F(DeadlinePropagationTest, TightDeadlineProbesLessThanNoDeadline) {
  auto searcher = MakeTrained();
  Query q = MakeQuery({"alpha", "beta"});
  auto unlimited = searcher->Select(q, 1, 0.9999);
  ASSERT_TRUE(unlimited.ok());
  ASSERT_GT(unlimited->num_probes(), 0);

  obs::FakeClock clock(0);
  Deadline expired = Deadline::After(&clock, 1);
  clock.Advance(10);
  auto cut = searcher->Select(q, 1, 0.9999, expired);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut->degraded);
  EXPECT_LT(cut->num_probes(), unlimited->num_probes());
}

// --------------------------------------- ProbeBatch cancellation point

/// Latency-injecting decorator: every CountMatches advances the injected
/// FakeClock, simulating a slow remote backend. It inherits the base-class
/// ProbeBatch loop, so the deadline cancellation point between probes is
/// exactly what a real decorated (e.g. flaky-wrapped) database exercises.
class SlowDatabase : public HiddenWebDatabase {
 public:
  SlowDatabase(std::shared_ptr<LocalDatabase> inner, obs::FakeClock* clock,
               std::uint64_t latency_ns)
      : inner_(std::move(inner)), clock_(clock), latency_ns_(latency_ns) {}

  const std::string& name() const override { return inner_->name(); }
  std::uint32_t size() const override { return inner_->size(); }
  Result<std::uint64_t> CountMatches(const Query& query) const override {
    clock_->Advance(latency_ns_);
    return inner_->CountMatches(query);
  }
  Result<std::vector<SearchHit>> Search(const Query& query,
                                        std::size_t k) const override {
    clock_->Advance(latency_ns_);
    return inner_->Search(query, k);
  }
  std::uint64_t queries_served() const override {
    return inner_->queries_served();
  }

 private:
  std::shared_ptr<LocalDatabase> inner_;
  obs::FakeClock* clock_;
  std::uint64_t latency_ns_;
};

TEST(ProbeBatchDeadlineTest, SlowBackendCutBetweenProbes) {
  obs::FakeClock clock(0);
  SlowDatabase slow(MakeDb("slow", 0, 100), &clock, 100000);  // 100us/probe

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(MakeQuery({"alpha"}));

  // Budget covers 2.5 probes: the check before probe 3 (t = 300us >= 250us)
  // must cancel the rest of the batch.
  Deadline deadline = Deadline::After(&clock, 250000);
  auto result = slow.ProbeBatch(queries, RelevancyDefinition::kDocumentFrequency,
                                deadline);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_EQ(slow.queries_served(), 3u);  // overran by at most one probe
}

TEST(ProbeBatchDeadlineTest, NoDeadlineRunsFullBatch) {
  obs::FakeClock clock(0);
  SlowDatabase slow(MakeDb("slow", 0, 100), &clock, 100000);
  std::vector<Query> queries;
  for (int i = 0; i < 5; ++i) queries.push_back(MakeQuery({"alpha"}));
  auto result =
      slow.ProbeBatch(queries, RelevancyDefinition::kDocumentFrequency);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
  EXPECT_EQ(slow.queries_served(), 5u);
}

TEST(ProbeBatchDeadlineTest, LocalDatabaseRejectsExpiredAtEntry) {
  obs::FakeClock clock(1000);
  auto db = MakeDb("local", 0, 100);
  std::vector<Query> queries = {MakeQuery({"alpha"}), MakeQuery({"beta"})};
  Deadline expired{&clock, 1};
  auto result = db->ProbeBatch(queries,
                               RelevancyDefinition::kDocumentFrequency,
                               expired);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_EQ(db->queries_served(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
