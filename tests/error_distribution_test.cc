#include "core/error_distribution.h"

#include <gtest/gtest.h>

#include "core/relevancy_distribution.h"

namespace metaprobe {
namespace core {
namespace {

// ------------------------------------------------------------ RelativeError

TEST(RelativeErrorTest, PaperExample) {
  // Section 3.1: the estimator predicts 650 while the truth is 1300, an
  // underestimation of 100% -> error +1.0 under Eq. 2.
  EXPECT_DOUBLE_EQ(RelativeError(1300.0, 650.0), 1.0);
}

TEST(RelativeErrorTest, ZeroActualGivesMinusOne) {
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 200.0), -1.0);
}

TEST(RelativeErrorTest, PerfectEstimateIsZero) {
  EXPECT_DOUBLE_EQ(RelativeError(200.0, 200.0), 0.0);
}

TEST(RelativeErrorTest, UnitFloorOnDenominator) {
  // r_hat = 0 with actual 5 would divide by zero under raw Eq. 2; the unit
  // floor yields +5 instead.
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.5), 4.5);
}

TEST(RelativeErrorTest, NeverBelowMinusOne) {
  for (double est : {0.0, 0.5, 1.0, 10.0, 1e6}) {
    EXPECT_GE(RelativeError(0.0, est), -1.0);
  }
}

// -------------------------------------------------------- ErrorDistribution

TEST(ErrorDistributionTest, DefaultBinningHasTenCells) {
  // dof 9 in the paper's chi-square setup -> 10 cells.
  ErrorDistribution ed;
  EXPECT_EQ(ed.histogram().num_cells(), 10u);
  EXPECT_TRUE(ed.empty());
}

TEST(ErrorDistributionTest, EmptyYieldsZeroImpulse) {
  ErrorDistribution ed;
  stats::DiscreteDistribution d = ed.ToDistribution();
  EXPECT_TRUE(d.IsImpulse());
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
}

TEST(ErrorDistributionTest, ObservationsAccumulate) {
  ErrorDistribution ed;
  ed.AddObservation(-0.5);
  ed.AddObservation(0.0);
  ed.AddObservation(2.0);
  EXPECT_EQ(ed.sample_count(), 3u);
  EXPECT_FALSE(ed.empty());
}

TEST(ErrorDistributionTest, AddSampleComputesError) {
  ErrorDistribution ed;
  ed.AddSample(1300.0, 650.0);  // +1.0
  stats::DiscreteDistribution d = ed.ToDistribution();
  EXPECT_TRUE(d.IsImpulse());
  // +1.0 lands in the [1, 2.5) cell whose representative is 1.75.
  EXPECT_NEAR(d.Mean(), 1.75, 1e-9);
}

TEST(ErrorDistributionTest, ErrorsBelowMinusOneClamped) {
  ErrorDistribution ed;
  ed.AddObservation(-3.0);  // impossible; clamp to -1
  stats::DiscreteDistribution d = ed.ToDistribution();
  EXPECT_GE(d.MinValue(), -1.0 - 1e-12);
}

TEST(ErrorDistributionTest, RepresentativesClampedToMinusOne) {
  ErrorDistribution ed;
  ed.AddObservation(-1.0);  // lowest cell
  stats::DiscreteDistribution d = ed.ToDistribution();
  EXPECT_GE(d.MinValue(), -1.0);
}

TEST(ErrorDistributionTest, DistributionMatchesHistogramProbs) {
  ErrorDistribution ed;
  for (int i = 0; i < 40; ++i) ed.AddObservation(-0.7);  // one cell
  for (int i = 0; i < 50; ++i) ed.AddObservation(0.0);   // another
  for (int i = 0; i < 10; ++i) ed.AddObservation(0.7);   // a third
  stats::DiscreteDistribution d = ed.ToDistribution();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_NEAR(d.atom(0).prob, 0.4, 1e-12);
  EXPECT_NEAR(d.atom(1).prob, 0.5, 1e-12);
  EXPECT_NEAR(d.atom(2).prob, 0.1, 1e-12);
}

TEST(ErrorDistributionTest, CustomEdges) {
  auto ed = ErrorDistribution::MakeWithEdges({-0.5, 0.5});
  ASSERT_TRUE(ed.ok());
  EXPECT_EQ(ed->histogram().num_cells(), 3u);
  EXPECT_TRUE(ErrorDistribution::MakeWithEdges({}).status()
                  .IsInvalidArgument());
}

TEST(ErrorDistributionTest, MergeCombinesSamples) {
  ErrorDistribution a, b;
  a.AddObservation(0.0);
  b.AddObservation(1.5);
  b.AddObservation(1.5);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.sample_count(), 3u);
}

TEST(ErrorDistributionTest, MergeRejectsDifferentBinning) {
  ErrorDistribution a;
  auto b = ErrorDistribution::MakeWithEdges({-0.5, 0.5});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a.MergeFrom(*b).ok());
}

// ------------------------------------------------- RelevancyDistribution

TEST(RelevancyDistributionTest, PaperExample3) {
  // Example 3 / Figure 5(b): ED with bars at -50% (0.4), 0% (0.5),
  // +50% (0.1); r_hat = 100 yields RD {50: 0.4, 100: 0.5, 150: 0.1}.
  stats::DiscreteDistribution errors =
      stats::DiscreteDistribution::Make(
          {{-0.5, 0.4}, {0.0, 0.5}, {0.5, 0.1}})
          .ValueOrDie();
  RelevancyDistribution rd = RelevancyDistribution::FromErrorDist(100, errors);
  EXPECT_FALSE(rd.probed);
  EXPECT_DOUBLE_EQ(rd.estimate, 100.0);
  ASSERT_EQ(rd.dist.size(), 3u);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(50), 0.4);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(100), 0.5);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(150), 0.1);
}

TEST(RelevancyDistributionTest, Figure5cDerivation) {
  // db2: ED {0%: 0.1, +100%: 0.9}, r_hat = 65 -> RD {65: 0.1, 130: 0.9}.
  stats::DiscreteDistribution errors =
      stats::DiscreteDistribution::Make({{0.0, 0.1}, {1.0, 0.9}})
          .ValueOrDie();
  RelevancyDistribution rd = RelevancyDistribution::FromErrorDist(65, errors);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(65), 0.1);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(130), 0.9);
}

TEST(RelevancyDistributionTest, NegativeRelevancyClampedToZero) {
  stats::DiscreteDistribution errors =
      stats::DiscreteDistribution::Make({{-1.0, 0.5}, {0.0, 0.5}})
          .ValueOrDie();
  RelevancyDistribution rd = RelevancyDistribution::FromErrorDist(80, errors);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(0), 0.5);
  EXPECT_DOUBLE_EQ(rd.dist.PrEqual(80), 0.5);
}

TEST(RelevancyDistributionTest, SmallEstimateUsesUnitDenominator) {
  // r_hat = 0.2: r = max(0, 0.2 + err * 1.0) mirrors the error definition.
  stats::DiscreteDistribution errors =
      stats::DiscreteDistribution::Make({{2.0, 1.0}}).ValueOrDie();
  RelevancyDistribution rd = RelevancyDistribution::FromErrorDist(0.2, errors);
  EXPECT_DOUBLE_EQ(rd.dist.Mean(), 2.2);
}

TEST(RelevancyDistributionTest, EmptyEdTrustsEstimate) {
  ErrorDistribution ed;
  RelevancyDistribution rd = RelevancyDistribution::FromEstimate(42.0, ed);
  EXPECT_TRUE(rd.dist.IsImpulse());
  EXPECT_DOUBLE_EQ(rd.dist.Mean(), 42.0);
}

TEST(RelevancyDistributionTest, FromEstimateUsesLearnedEd) {
  ErrorDistribution ed;
  for (int i = 0; i < 10; ++i) ed.AddObservation(0.0);
  RelevancyDistribution rd = RelevancyDistribution::FromEstimate(100.0, ed);
  EXPECT_TRUE(rd.dist.IsImpulse());
  EXPECT_DOUBLE_EQ(rd.dist.Mean(), 100.0);  // zero-error cell representative
}

TEST(RelevancyDistributionTest, ProbedIsImpulse) {
  RelevancyDistribution rd = RelevancyDistribution::Probed(73.0);
  EXPECT_TRUE(rd.probed);
  EXPECT_TRUE(rd.dist.IsImpulse());
  EXPECT_DOUBLE_EQ(rd.dist.Mean(), 73.0);
}

TEST(RelevancyDistributionTest, ProbedNegativeClamped) {
  EXPECT_DOUBLE_EQ(RelevancyDistribution::Probed(-5.0).dist.Mean(), 0.0);
}

TEST(RelevancyDistributionTest, RoundTripErrorInversion) {
  // Observing error e on estimate r_hat and re-deriving must reproduce the
  // actual relevancy at the cell representative's accuracy; with an exact
  // atom it is exact.
  double actual = 480.0, estimate = 300.0;
  double err = RelativeError(actual, estimate);
  stats::DiscreteDistribution errors =
      stats::DiscreteDistribution::Make({{err, 1.0}}).ValueOrDie();
  RelevancyDistribution rd =
      RelevancyDistribution::FromErrorDist(estimate, errors);
  EXPECT_NEAR(rd.dist.Mean(), actual, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
