// Integration tier for the observability layer: a Metasearcher wired with a
// FakeClock and a QueryTracer must (a) expose the serving counters and
// latency histograms through the Prometheus exposition, and (b) record one
// span per probe from which the full certainty trajectory of a Select is
// reconstructible — database id, observed r, certainty before and after —
// ending at the reported expected correctness.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metasearcher.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace metaprobe {
namespace core {
namespace {

// The deterministic three-database world of metasearcher_test.cc.
std::shared_ptr<LocalDatabase> MakeDb(const std::string& name, int pattern,
                                      int num_docs) {
  index::InvertedIndex::Builder builder;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    switch (pattern) {
      case 0:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "beta", "pad"}
                           : std::vector<std::string>{"pad", "fill"};
        break;
      case 1:
        terms = d % 2 == 0 ? std::vector<std::string>{"alpha", "pad"}
                           : std::vector<std::string>{"beta", "fill"};
        break;
      default:
        if (d % 4 == 0) terms = {"alpha", "beta"};
        else if (d % 4 == 1) terms = {"alpha", "pad"};
        else if (d % 4 == 2) terms = {"beta", "pad"};
        else terms = {"pad", "fill"};
        break;
    }
    builder.AddDocument(terms);
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

Query MakeQuery(std::vector<std::string> terms) {
  Query q;
  q.terms = std::move(terms);
  return q;
}

std::vector<Query> TrainingQueries() {
  std::vector<Query> queries;
  for (int i = 0; i < 30; ++i) {
    queries.push_back(MakeQuery({"alpha", "beta"}));
    queries.push_back(MakeQuery({"alpha", "fill"}));
    queries.push_back(MakeQuery({"alpha", "pad"}));
    queries.push_back(MakeQuery({"beta", "pad"}));
    queries.push_back(MakeQuery({"pad", "fill"}));
  }
  return queries;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  std::unique_ptr<Metasearcher> MakeTrained(MetasearcherOptions options = {}) {
    auto searcher = std::make_unique<Metasearcher>(std::move(options));
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("corr", 0, 200)).ok());
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("anti", 1, 200)).ok());
    EXPECT_TRUE(searcher->AddLocalDatabase(MakeDb("mix", 2, 200)).ok());
    EXPECT_TRUE(searcher->Train(TrainingQueries()).ok());
    return searcher;
  }
};

// --------------------------------------------------------------- Tracing

TEST_F(ObservabilityTest, TracedSelectReconstructsCertaintyTrajectory) {
  auto searcher = MakeTrained();
  obs::FakeClock clock(0, 1000);  // every read advances 1us
  obs::QueryTracer tracer(&clock);
  searcher->SetClock(&clock);
  searcher->SetTracer(&tracer);

  Query query = MakeQuery({"alpha", "beta"});
  auto report = searcher->Select(query, 1, 0.999);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->num_probes(), 0) << "world too easy; raise threshold";

  auto trace = tracer.Latest();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->query(), "alpha beta");

  // Pipeline stages are spanned.
  EXPECT_EQ(trace->SpansNamed("estimate").size(), 1u);
  EXPECT_EQ(trace->SpansNamed("model_build").size(), 1u);

  // One probe span per probe, in observation order.
  auto probes = trace->SpansNamed("probe");
  ASSERT_EQ(probes.size(), report->probe_order.size());
  double prev_after = -1.0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const obs::TraceSpan* span = probes[i];
    EXPECT_EQ(static_cast<std::size_t>(span->num("db", -1.0)),
              report->probe_order[i]);
    EXPECT_EQ(span->num("ok", -1.0), 1.0);
    EXPECT_GE(span->num("observed_r", -1.0), 0.0);
    double before = span->num("certainty_before", -2.0);
    double after = span->num("certainty_after", -2.0);
    EXPECT_GE(before, 0.0);
    EXPECT_LE(before, 1.0 + 1e-12);
    EXPECT_GE(after, 0.0);
    // Sequential probing: this probe starts where the last one ended.
    if (i > 0) {
      EXPECT_DOUBLE_EQ(before, prev_after);
    }
    prev_after = after;
    // The injected clock timed the probe itself.
    EXPECT_GT(span->num("probe_seconds", -1.0), 0.0);
    EXPECT_GT(span->end_ns, span->start_ns);
  }
  // The trajectory ends at the reported certainty.
  EXPECT_DOUBLE_EQ(prev_after, report->expected_correctness);

  // Stop decision is recorded with the final state.
  auto stops = trace->SpansNamed("stop");
  ASSERT_EQ(stops.size(), 1u);
  EXPECT_EQ(stops[0]->num("reached_threshold", -1.0),
            report->reached_threshold ? 1.0 : 0.0);
  EXPECT_DOUBLE_EQ(stops[0]->num("expected_correctness", -1.0),
                   report->expected_correctness);
  EXPECT_EQ(static_cast<int>(stops[0]->num("probes", -1.0)),
            report->num_probes());

  // Every probe span carries the policy score that won its planning round
  // (the default stopping-probability policy always scores its pick).
  for (const obs::TraceSpan* span : probes) {
    EXPECT_TRUE(std::isfinite(span->num("policy_score", std::nan(""))));
  }

  // The JSON-lines export round-trips all spans of the trace.
  std::string jsonl = tracer.ExportJsonLinesText();
  EXPECT_NE(jsonl.find("\"span\":\"probe\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"span\":\"stop\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"query\":\"alpha beta\""), std::string::npos);
}

TEST_F(ObservabilityTest, TracingDoesNotChangeSelectionResults) {
  auto traced = MakeTrained();
  auto plain = MakeTrained();
  obs::FakeClock clock(0, 1000);
  obs::QueryTracer tracer(&clock);
  traced->SetClock(&clock);
  traced->SetTracer(&tracer);

  for (const auto& terms : std::vector<std::vector<std::string>>{
           {"alpha", "beta"}, {"alpha", "pad"}, {"beta", "pad"}}) {
    Query q = MakeQuery(terms);
    auto a = traced->Select(q, 1, 0.999);
    auto b = plain->Select(q, 1, 0.999);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->databases, b->databases);
    EXPECT_EQ(a->probe_order, b->probe_order);
    EXPECT_DOUBLE_EQ(a->expected_correctness, b->expected_correctness);
  }
}

TEST_F(ObservabilityTest, FailedSelectStillFinishesItsTrace) {
  auto searcher = MakeTrained();
  obs::FakeClock clock;
  obs::QueryTracer tracer(&clock);
  searcher->SetClock(&clock);
  searcher->SetTracer(&tracer);
  auto report = searcher->Select(MakeQuery({}), 1, 0.9);
  EXPECT_FALSE(report.ok());
  // The trace for the failed query was finished, not leaked.
  EXPECT_EQ(tracer.finished_count(), 1u);
}

// ------------------------------------------------------------- Exposition

TEST_F(ObservabilityTest, ExpositionExportsServingSeries) {
  MetasearcherOptions options;
  options.enable_rd_cache = true;
  auto searcher = MakeTrained(std::move(options));
  obs::FakeClock clock(0, 1000);
  searcher->SetClock(&clock);

  Query query = MakeQuery({"alpha", "beta"});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(searcher->Select(query, 1, 0.999).ok());
  }

  std::string text = searcher->metrics().ExpositionText();
  // Probe counters.
  EXPECT_NE(text.find("# TYPE metaprobe_probes_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_probes_total{result=\"ok\"}"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_queries_served_total 3\n"),
            std::string::npos);
  // Latency histograms (FakeClock advances on every read, so buckets fill).
  EXPECT_NE(
      text.find("# TYPE metaprobe_select_latency_seconds histogram\n"),
      std::string::npos);
  EXPECT_NE(text.find("metaprobe_select_latency_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_probe_latency_seconds_bucket{le=\""),
            std::string::npos);
  // Kernel cache events.
  EXPECT_NE(text.find(
                "metaprobe_kernel_cache_events_total{event=\"full_rebuild\"}"),
            std::string::npos);
  EXPECT_NE(text.find(
                "metaprobe_kernel_cache_events_total{event=\"dp_fallback\"}"),
            std::string::npos);
  // RD cache: three identical queries -> hits on the repeats.
  EXPECT_NE(text.find(
                "metaprobe_rd_cache_requests_total{result=\"hit\"}"),
            std::string::npos);
  EXPECT_NE(text.find(
                "metaprobe_rd_cache_requests_total{result=\"miss\"}"),
            std::string::npos);
  EXPECT_NE(text.find("metaprobe_rd_cache_entries"), std::string::npos);

  // The struct view and the exposition agree.
  ServingStats stats = searcher->stats();
  EXPECT_EQ(stats.queries_served, 3u);
  EXPECT_GT(stats.probes_issued, 0u);
  EXPECT_GT(stats.rd_cache_hits, 0u);
  char expected[64];
  std::snprintf(expected, sizeof(expected),
                "metaprobe_probes_total{result=\"ok\"} %llu\n",
                static_cast<unsigned long long>(stats.probes_issued));
  EXPECT_NE(text.find(expected), std::string::npos);
}

TEST_F(ObservabilityTest, SelectLatencyObservedFromInjectedClock) {
  auto searcher = MakeTrained();
  obs::FakeClock clock(0, 1'000'000);  // 1ms per read: latencies are "real"
  searcher->SetClock(&clock);
  ASSERT_TRUE(searcher->Select(MakeQuery({"alpha", "beta"}), 1, 0.999).ok());
  obs::Histogram* select = searcher->metrics().GetHistogram(
      "metaprobe_select_latency_seconds");
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->TotalCount(), 1u);
  EXPECT_GT(select->Sum(), 0.0);
}

TEST_F(ObservabilityTest, ResetStatsZeroesCountersAndHistograms) {
  auto searcher = MakeTrained();
  obs::FakeClock clock(0, 1000);
  searcher->SetClock(&clock);
  ASSERT_TRUE(searcher->Select(MakeQuery({"alpha", "beta"}), 1, 0.999).ok());
  ASSERT_GT(searcher->stats().queries_served, 0u);
  searcher->ResetStats();
  ServingStats stats = searcher->stats();
  EXPECT_EQ(stats.queries_served, 0u);
  EXPECT_EQ(stats.probes_issued, 0u);
  EXPECT_EQ(searcher->metrics()
                .GetHistogram("metaprobe_select_latency_seconds")
                ->TotalCount(),
            0u);
}

TEST_F(ObservabilityTest, DisablingRegistrySkipsHistogramsButKeepsCounters) {
  auto searcher = MakeTrained();
  obs::FakeClock clock(0, 1000);
  searcher->SetClock(&clock);
  searcher->metrics().set_enabled(false);
  ASSERT_TRUE(searcher->Select(MakeQuery({"alpha", "beta"}), 1, 0.999).ok());
  EXPECT_EQ(searcher->stats().queries_served, 1u);  // counters still move
  EXPECT_EQ(searcher->metrics()
                .GetHistogram("metaprobe_select_latency_seconds")
                ->TotalCount(),
            0u);  // histograms do not
}

}  // namespace
}  // namespace core
}  // namespace metaprobe
