#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "index/varint_codec.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace index {
namespace {

// RAII temp file holding `bytes`: OpenMapped consumes a filesystem path,
// so the mapped tests round-trip serialized indexes through a real file.
class TempIndexFile {
 public:
  explicit TempIndexFile(const std::string& bytes) {
    path_ = (std::filesystem::temp_directory_path() /
             "metaprobe_index_io_XXXXXX")
                .string();
    const int fd = ::mkstemp(path_.data());
    if (fd >= 0) ::close(fd);
    std::ofstream os(path_, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempIndexFile() { std::remove(path_.c_str()); }
  TempIndexFile(const TempIndexFile&) = delete;
  TempIndexFile& operator=(const TempIndexFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string Serialize(const InvertedIndex& index) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(index.SaveTo(os).ok());
  return os.str();
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

// Serializes `index` exactly as format-v1 builds did: the shared MPIX
// envelope with version 1 and per-term varint payloads.
std::string SerializeAsV1(const InvertedIndex& index) {
  std::string out("MPIX");
  PutU32(&out, 1);
  PutU32(&out, index.num_docs());
  PutU64(&out, index.GetStats().total_tokens);
  PutU64(&out, index.vocabulary().size());
  for (text::TermId id = 0; id < index.vocabulary().size(); ++id) {
    const std::string& term = index.vocabulary().TermOf(id);
    PutU32(&out, static_cast<std::uint32_t>(term.size()));
    out.append(term);
    const PostingList* list = index.Postings(term);
    PutU32(&out, list == nullptr ? 0 : list->size());
    std::vector<std::uint8_t> payload =
        list == nullptr ? std::vector<std::uint8_t>{}
                        : v1::EncodePostings(list->Decode());
    PutU64(&out, payload.size());
    out.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  }
  return out;
}

// Serializes `index` exactly as format-v2 builds did: the shared MPIX
// envelope with version 2 and block payloads whose directory entries lack
// the u32 max-tf field (v3 entries are 14 bytes, v2 entries 10).
std::string SerializeAsV2(const InvertedIndex& index) {
  std::string out("MPIX");
  PutU32(&out, 2);
  PutU32(&out, index.num_docs());
  PutU64(&out, index.GetStats().total_tokens);
  PutU64(&out, index.vocabulary().size());
  for (text::TermId id = 0; id < index.vocabulary().size(); ++id) {
    const std::string& term = index.vocabulary().TermOf(id);
    PutU32(&out, static_cast<std::uint32_t>(term.size()));
    out.append(term);
    const PostingList* list = index.Postings(term);
    const std::uint32_t count = list == nullptr ? 0 : list->size();
    PutU32(&out, count);
    const std::vector<std::uint8_t> v3 =
        list == nullptr ? std::vector<std::uint8_t>{} : list->EncodePayload();
    const std::size_t entries =
        (count + PostingList::kBlockSize - 1) / PostingList::kBlockSize;
    std::vector<std::uint8_t> v2;
    v2.reserve(v3.size() - entries * 4);
    for (std::size_t e = 0; e < entries; ++e) {
      const std::uint8_t* entry = v3.data() + e * 14;
      v2.insert(v2.end(), entry, entry + 8);  // first_doc, last_doc
      v2.push_back(entry[12]);                // doc_bits
      v2.push_back(entry[13]);                // tf_bits
    }
    v2.insert(v2.end(),
              v3.begin() + static_cast<std::ptrdiff_t>(entries * 14),
              v3.end());
    PutU64(&out, v2.size());
    out.append(reinterpret_cast<const char*>(v2.data()), v2.size());
  }
  return out;
}

InvertedIndex SmallIndex() {
  InvertedIndex::Builder builder;
  builder.AddDocument({"breast", "cancer", "treatment"});
  builder.AddDocument({"breast", "cancer", "cancer", "biopsy"});
  builder.AddDocument({"heart", "attack"});
  builder.AddDocument({"breast", "feeding"});
  builder.AddDocument({"cancer", "screening"});
  return std::move(builder).Build().ValueOrDie();
}

TEST(IndexIoTest, RoundTripSmall) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_docs(), original.num_docs());
  IndexStats a = original.GetStats();
  IndexStats b = loaded->GetStats();
  EXPECT_EQ(a.num_terms, b.num_terms);
  EXPECT_EQ(a.num_postings, b.num_postings);
  EXPECT_EQ(a.total_tokens, b.total_tokens);

  for (const char* term : {"breast", "cancer", "heart", "unknown"}) {
    EXPECT_EQ(loaded->DocumentFrequency(term),
              original.DocumentFrequency(term))
        << term;
  }
  EXPECT_EQ(loaded->CountConjunctive({"breast", "cancer"}),
            original.CountConjunctive({"breast", "cancer"}));
  EXPECT_EQ(loaded->TopKCosine({"breast", "cancer"}, 5),
            original.TopKCosine({"breast", "cancer"}, 5));
}

TEST(IndexIoTest, RoundTripSyntheticCorpus) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "io-test";
  spec.num_docs = 500;
  spec.mixture = {{"oncology", 1.0}, {"cardiology", 1.0}};
  spec.seed = 321;
  InvertedIndex original = std::move(generator.Generate(spec)->index);

  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Behavioural equivalence on a sweep of real queries.
  for (auto terms : {std::vector<std::string>{"cancer"},
                     std::vector<std::string>{"cancer", "breast"},
                     std::vector<std::string>{"heart", "arteri"},
                     std::vector<std::string>{"tumor", "biopsi", "cancer"}}) {
    EXPECT_EQ(loaded->CountConjunctive(terms),
              original.CountConjunctive(terms));
    EXPECT_EQ(loaded->TopKCosine(terms, 10), original.TopKCosine(terms, 10));
  }
}

TEST(IndexIoTest, RoundTripIsByteStable) {
  InvertedIndex original = SmallIndex();
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(first).ok());
  std::istringstream is(first.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok());
  std::ostringstream second(std::ios::binary);
  ASSERT_TRUE(loaded->SaveTo(second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(IndexIoTest, RejectsBadMagic) {
  std::istringstream is("JUNKJUNKJUNK", std::ios::binary);
  EXPECT_TRUE(InvertedIndex::LoadFrom(is).status().IsInvalidArgument());
}

TEST(IndexIoTest, RejectsEmptyStream) {
  std::istringstream is("", std::ios::binary);
  EXPECT_FALSE(InvertedIndex::LoadFrom(is).ok());
}

TEST(IndexIoTest, RejectsTruncation) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::string payload = os.str();
  // Any prefix must be rejected, never crash.
  for (std::size_t cut : {4ul, 12ul, 20ul, payload.size() / 2,
                          payload.size() - 3}) {
    std::istringstream is(payload.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(InvertedIndex::LoadFrom(is).ok()) << "cut at " << cut;
  }
}

TEST(IndexIoTest, RejectsCorruptedBytes) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::string payload = os.str();
  // Flip bytes across the payload; loads must either fail cleanly or (for
  // benign flips inside term text) succeed — never crash or hang.
  stats::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = payload;
    std::size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5b);
    std::istringstream is(mutated, std::ios::binary);
    auto result = InvertedIndex::LoadFrom(is);
    if (result.ok()) {
      EXPECT_EQ(result->num_docs(), original.num_docs());
    }
  }
}

TEST(IndexIoTest, LoadsV1FormatFiles) {
  // A v1-serialized index (varint payloads) must load under the current
  // reader and behave identically to the original.
  for (bool synthetic : {false, true}) {
    InvertedIndex original;
    if (synthetic) {
      text::Analyzer analyzer;
      corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
      corpus::DatabaseSpec spec;
      spec.name = "v1-compat";
      spec.num_docs = 400;
      spec.mixture = {{"oncology", 1.0}};
      spec.seed = 7;
      original = std::move(generator.Generate(spec)->index);
    } else {
      original = SmallIndex();
    }
    std::istringstream is(SerializeAsV1(original), std::ios::binary);
    auto loaded = InvertedIndex::LoadFrom(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->num_docs(), original.num_docs());
    IndexStats a = original.GetStats();
    IndexStats b = loaded->GetStats();
    EXPECT_EQ(a.num_terms, b.num_terms);
    EXPECT_EQ(a.num_postings, b.num_postings);
    for (auto terms : {std::vector<std::string>{"cancer"},
                       std::vector<std::string>{"cancer", "breast"},
                       std::vector<std::string>{"tumor", "biopsi"}}) {
      EXPECT_EQ(loaded->CountConjunctive(terms),
                original.CountConjunctive(terms));
      EXPECT_EQ(loaded->TopKCosine(terms, 10), original.TopKCosine(terms, 10));
    }
    // Saving the loaded index upgrades it: the result is a current-format
    // file that round-trips byte-stably.
    std::ostringstream resaved(std::ios::binary);
    ASSERT_TRUE(loaded->SaveTo(resaved).ok());
    std::istringstream is2(resaved.str(), std::ios::binary);
    auto upgraded = InvertedIndex::LoadFrom(is2);
    ASSERT_TRUE(upgraded.ok()) << upgraded.status();
    std::ostringstream resaved2(std::ios::binary);
    ASSERT_TRUE(upgraded->SaveTo(resaved2).ok());
    EXPECT_EQ(resaved.str(), resaved2.str());
  }
}

TEST(IndexIoTest, LoadsV2FormatFiles) {
  // A v2-serialized index (block payloads without the max-tf directory
  // field) must load under the v3 reader — the maxima are recovered from
  // the tf sections — and behave identically to the original.
  for (bool synthetic : {false, true}) {
    InvertedIndex original;
    if (synthetic) {
      text::Analyzer analyzer;
      corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
      corpus::DatabaseSpec spec;
      spec.name = "v2-compat";
      spec.num_docs = 400;
      spec.mixture = {{"oncology", 1.0}};
      spec.seed = 7;
      original = std::move(generator.Generate(spec)->index);
    } else {
      original = SmallIndex();
    }
    std::istringstream is(SerializeAsV2(original), std::ios::binary);
    auto loaded = InvertedIndex::LoadFrom(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->num_docs(), original.num_docs());
    IndexStats a = original.GetStats();
    IndexStats b = loaded->GetStats();
    EXPECT_EQ(a.num_terms, b.num_terms);
    EXPECT_EQ(a.num_postings, b.num_postings);
    for (auto terms : {std::vector<std::string>{"cancer"},
                       std::vector<std::string>{"cancer", "breast"},
                       std::vector<std::string>{"tumor", "biopsi"}}) {
      EXPECT_EQ(loaded->CountConjunctive(terms),
                original.CountConjunctive(terms));
      EXPECT_EQ(loaded->TopKCosine(terms, 10), original.TopKCosine(terms, 10));
    }
    // Re-saving upgrades the file to v3 — byte-identical to saving the
    // original (the recovered maxima match the directory the original
    // writes).
    std::ostringstream resaved(std::ios::binary);
    ASSERT_TRUE(loaded->SaveTo(resaved).ok());
    std::ostringstream direct(std::ios::binary);
    ASSERT_TRUE(original.SaveTo(direct).ok());
    EXPECT_EQ(resaved.str(), direct.str());
  }
}

TEST(IndexIoTest, OpenMappedMatchesEagerLoad) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "mapped-io";
  spec.num_docs = 500;
  spec.mixture = {{"oncology", 1.0}, {"cardiology", 1.0}};
  spec.seed = 321;
  InvertedIndex original = std::move(generator.Generate(spec)->index);
  TempIndexFile file(Serialize(original));

  for (bool eager_scoring : {false, true}) {
    MappedIndexOptions options;
    options.eager_scoring = eager_scoring;
    auto mapped = InvertedIndex::OpenMapped(file.path(), options);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_TRUE(mapped->is_mapped());
    EXPECT_TRUE(mapped->frozen());
    ASSERT_TRUE(mapped->EnsureScoringReady().ok());
    EXPECT_EQ(mapped->num_docs(), original.num_docs());
    for (auto terms : {std::vector<std::string>{"cancer"},
                       std::vector<std::string>{"cancer", "breast"},
                       std::vector<std::string>{"heart", "arteri"},
                       std::vector<std::string>{"tumor", "biopsi",
                                                "cancer"}}) {
      EXPECT_EQ(mapped->CountConjunctive(terms),
                original.CountConjunctive(terms));
      EXPECT_EQ(mapped->TopKCosine(terms, 10),
                original.TopKCosine(terms, 10));
    }
    // The payload bytes live in the mapping, not on the heap.
    IndexStats stats = mapped->GetStats();
    EXPECT_GT(stats.mapped_bytes, 0u);
    EXPECT_EQ(stats.posting_bytes, stats.heap_bytes + stats.mapped_bytes);
    // Re-saving a mapped index reproduces the file byte for byte.
    std::ostringstream resaved(std::ios::binary);
    ASSERT_TRUE(mapped->SaveTo(resaved).ok());
    std::ifstream is(file.path(), std::ios::binary);
    std::string disk((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(resaved.str(), disk);
  }
}

TEST(IndexIoTest, OpenMappedMissingFileIsIoError) {
  EXPECT_TRUE(InvertedIndex::OpenMapped("/nonexistent/metaprobe.mpix")
                  .status()
                  .IsIoError());
}

TEST(IndexIoTest, OpenMappedRejectsTruncation) {
  const std::string payload = Serialize(SmallIndex());
  for (std::size_t cut : {0ul, 4ul, 12ul, 20ul, payload.size() / 2,
                          payload.size() - 3}) {
    TempIndexFile file(payload.substr(0, cut));
    EXPECT_FALSE(InvertedIndex::OpenMapped(file.path()).ok())
        << "cut at " << cut;
  }
}

TEST(IndexIoTest, OpenMappedRejectsTrailingBytes) {
  // The mapped reader owns the whole file: bytes past the last term are a
  // framing error, not ignorable slack.
  TempIndexFile file(Serialize(SmallIndex()) + "junk");
  EXPECT_TRUE(
      InvertedIndex::OpenMapped(file.path()).status().IsInvalidArgument());
}

TEST(IndexIoTest, OpenMappedRejectsCorruptedBytes) {
  // The LoadFrom flip sweep, through the mapped path: every single-byte
  // corruption must be caught at open, at scoring finalization (which
  // decodes every block), or — for benign flips inside term text — load an
  // index that still answers queries without crashing. Lazy decode of a
  // contradicted block exhausts the cursor instead of invoking UB, which
  // is exactly what the ASan/UBSan stages check here.
  InvertedIndex original = SmallIndex();
  const std::string payload = Serialize(original);
  stats::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = payload;
    std::size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5b);
    TempIndexFile file(mutated);
    auto result = InvertedIndex::OpenMapped(file.path());
    if (!result.ok()) continue;
    EXPECT_EQ(result->num_docs(), original.num_docs());
    result->CountConjunctive({"breast", "cancer"});
    if (result->EnsureScoringReady().ok()) {
      result->TopKCosine({"breast", "cancer"}, 5);
    }
  }
}

TEST(IndexIoTest, OpenMappedLoadsV1AndV2Files) {
  InvertedIndex original = SmallIndex();
  // v1 files fall back to the eager legacy reader behind the same entry
  // point; v2 files map with the max-tf maxima recovered eagerly from the
  // tf sections. Both must answer queries identically to the original.
  for (const std::string& bytes :
       {SerializeAsV1(original), SerializeAsV2(original)}) {
    TempIndexFile file(bytes);
    auto loaded = InvertedIndex::OpenMapped(file.path());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_TRUE(loaded->EnsureScoringReady().ok());
    EXPECT_EQ(loaded->num_docs(), original.num_docs());
    EXPECT_EQ(loaded->CountConjunctive({"breast", "cancer"}),
              original.CountConjunctive({"breast", "cancer"}));
    EXPECT_EQ(loaded->TopKCosine({"breast", "cancer"}, 5),
              original.TopKCosine({"breast", "cancer"}, 5));
  }
}

TEST(IndexIoTest, RejectsCorruptMaxTfEntries) {
  // Every single-byte flip of a max-tf directory field must fail the load:
  // either the width consistency check in the payload decoder or the deep
  // cross-check against the decoded tf values in FinalizeScoring.
  InvertedIndex::Builder builder;
  stats::Rng rng(17);
  for (int d = 0; d < 600; ++d) {
    std::vector<std::string> terms;
    for (std::uint64_t c = 1 + rng.UniformInt(4); c > 0; --c) {
      terms.push_back("common");
    }
    if (d % 3 == 0) terms.push_back("sparse");
    builder.AddDocument(terms);
  }
  InvertedIndex original = std::move(builder).Build().ValueOrDie();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  const std::string file = os.str();

  auto get_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               file[off + i]))
           << (8 * i);
    }
    return v;
  };
  auto get_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               file[off + i]))
           << (8 * i);
    }
    return v;
  };

  // Walk the envelope to find every max-tf byte: header is 28 bytes, then
  // per term {u32 len, term, u32 count, u64 payload_len, payload}; within
  // a payload the 14-byte directory entries lead, max-tf at bytes 8..11.
  std::vector<std::size_t> max_tf_bytes;
  std::size_t off = 28;
  const std::uint64_t num_terms = get_u64(20);
  for (std::uint64_t t = 0; t < num_terms; ++t) {
    off += 4 + get_u32(off);
    const std::uint32_t count = get_u32(off);
    off += 4;
    const std::uint64_t payload_len = get_u64(off);
    off += 8;
    const std::size_t entries =
        (count + PostingList::kBlockSize - 1) / PostingList::kBlockSize;
    for (std::size_t e = 0; e < entries; ++e) {
      for (std::size_t b = 8; b < 12; ++b) {
        max_tf_bytes.push_back(off + e * 14 + b);
      }
    }
    off += payload_len;
  }
  ASSERT_EQ(off, file.size());
  // 600 docs of "common" is four full blocks plus a tail, "sparse" one
  // block plus a tail: seven directory entries, 28 max-tf bytes.
  ASSERT_EQ(max_tf_bytes.size(), 28u);

  for (std::size_t pos : max_tf_bytes) {
    for (std::uint8_t flip : {0x01, 0x5b, 0x80}) {
      std::string mutated = file;
      mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
      std::istringstream is(mutated, std::ios::binary);
      EXPECT_TRUE(InvertedIndex::LoadFrom(is).status().IsInvalidArgument())
          << "flip 0x" << std::hex << int(flip) << " at byte " << std::dec
          << pos;
      // The mapped reader defers block decode, so a corrupt max-tf that
      // survives the directory parse must still be caught no later than
      // scoring finalization — an unsound WAND bound is never served.
      TempIndexFile mapped_file(mutated);
      auto mapped = InvertedIndex::OpenMapped(mapped_file.path());
      if (mapped.ok()) {
        EXPECT_TRUE(mapped->EnsureScoringReady().IsInvalidArgument())
            << "mapped flip 0x" << std::hex << int(flip) << " at byte "
            << std::dec << pos;
      }
    }
  }
}

TEST(IndexIoTest, RejectsUnsupportedVersion) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  for (std::uint32_t bad_version : {0u, 4u, 255u}) {
    std::string mutated = os.str();
    for (int i = 0; i < 4; ++i) {
      mutated[4 + i] = static_cast<char>(bad_version >> (8 * i));
    }
    std::istringstream is(mutated, std::ios::binary);
    EXPECT_TRUE(InvertedIndex::LoadFrom(is).status().IsInvalidArgument())
        << "version " << bad_version;
  }
}

TEST(IndexIoTest, RejectsCorruptV1Payload) {
  InvertedIndex original = SmallIndex();
  std::string v1_bytes = SerializeAsV1(original);
  // Flip bytes across the v1 file: clean failure or benign success, no
  // crashes — the legacy decoder keeps its full validation.
  stats::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = v1_bytes;
    std::size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5b);
    std::istringstream is(mutated, std::ios::binary);
    auto result = InvertedIndex::LoadFrom(is);
    if (result.ok()) {
      EXPECT_EQ(result->num_docs(), original.num_docs());
    }
  }
}

TEST(PostingListEncodedTest, FromEncodedRoundTrip) {
  PostingList list;
  for (DocId d = 0; d < 300; ++d) {
    ASSERT_TRUE(list.Append(d * 5 + 1, (d % 4) + 1).ok());
  }
  auto restored =
      PostingList::FromEncoded(list.size(), list.EncodePayload());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Decode(), list.Decode());
  // SkipTo works on the restored list (block directory was rebuilt).
  auto it = restored->begin();
  it.SkipTo(1001);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 1001u);
}

TEST(PostingListEncodedTest, RejectsTruncatedPayload) {
  PostingList list;
  for (DocId d = 0; d < 100; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  std::vector<std::uint8_t> bytes = list.EncodePayload();
  bytes.resize(bytes.size() / 2);
  EXPECT_TRUE(PostingList::FromEncoded(list.size(), std::move(bytes))
                  .status()
                  .IsInvalidArgument());
}

TEST(PostingListEncodedTest, RejectsCountMismatch) {
  PostingList list;
  for (DocId d = 0; d < 10; ++d) ASSERT_TRUE(list.Append(d, 1).ok());
  // Fewer claimed postings than the payload encodes.
  EXPECT_TRUE(PostingList::FromEncoded(5, list.EncodePayload())
                  .status()
                  .IsInvalidArgument());
  // More claimed postings than encoded.
  EXPECT_TRUE(PostingList::FromEncoded(20, list.EncodePayload())
                  .status()
                  .IsInvalidArgument());
}

TEST(PostingListEncodedTest, RejectsCorruptBlockHeaders) {
  PostingList list;
  for (DocId d = 0; d < 5 * PostingList::kBlockSize; ++d) {
    ASSERT_TRUE(list.Append(d * 3 + 1, (d % 5) + 1).ok());
  }
  const std::vector<std::uint8_t> payload = list.EncodePayload();
  const std::uint32_t count = list.size();

  auto expect_rejected = [&](std::vector<std::uint8_t> bytes,
                             const char* what) {
    EXPECT_TRUE(PostingList::FromEncoded(count, std::move(bytes))
                    .status()
                    .IsInvalidArgument())
        << what;
  };
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes[12] = 40;  // block 0 doc_bits beyond 32
    expect_rejected(std::move(bytes), "oversized bit width");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    // Zero block 0's last_doc: the range can no longer hold its postings.
    for (int i = 4; i < 8; ++i) bytes[i] = 0;
    expect_rejected(std::move(bytes), "inverted doc range");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes.resize(9);  // mid-directory truncation
    expect_rejected(std::move(bytes), "truncated directory");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes.pop_back();  // section shorter than the directory derives
    expect_rejected(std::move(bytes), "truncated section");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes[0] ^= 0xff;  // block 0 first_doc no longer matches its gaps
    expect_rejected(std::move(bytes), "first_doc mismatch");
  }

  // Every single-byte flip inside the directory must fail cleanly or load
  // postings consistent with the claimed count — never crash.
  const std::size_t dir_bytes = (count / PostingList::kBlockSize) * 14;
  for (std::size_t pos = 0; pos < dir_bytes; ++pos) {
    std::vector<std::uint8_t> bytes = payload;
    bytes[pos] ^= 0x5b;
    auto result = PostingList::FromEncoded(count, std::move(bytes));
    if (result.ok()) {
      EXPECT_EQ(result->size(), count);
      EXPECT_EQ(result->Decode().size(), count);
    }
  }
}

TEST(PostingListEncodedTest, EmptyList) {
  auto restored = PostingList::FromEncoded(0, {});
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
