#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "index/varint_codec.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace index {
namespace {

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

// Serializes `index` exactly as format-v1 builds did: the shared MPIX
// envelope with version 1 and per-term varint payloads.
std::string SerializeAsV1(const InvertedIndex& index) {
  std::string out("MPIX");
  PutU32(&out, 1);
  PutU32(&out, index.num_docs());
  PutU64(&out, index.GetStats().total_tokens);
  PutU64(&out, index.vocabulary().size());
  for (text::TermId id = 0; id < index.vocabulary().size(); ++id) {
    const std::string& term = index.vocabulary().TermOf(id);
    PutU32(&out, static_cast<std::uint32_t>(term.size()));
    out.append(term);
    const PostingList* list = index.Postings(term);
    PutU32(&out, list == nullptr ? 0 : list->size());
    std::vector<std::uint8_t> payload =
        list == nullptr ? std::vector<std::uint8_t>{}
                        : v1::EncodePostings(list->Decode());
    PutU64(&out, payload.size());
    out.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  }
  return out;
}

InvertedIndex SmallIndex() {
  InvertedIndex::Builder builder;
  builder.AddDocument({"breast", "cancer", "treatment"});
  builder.AddDocument({"breast", "cancer", "cancer", "biopsy"});
  builder.AddDocument({"heart", "attack"});
  builder.AddDocument({"breast", "feeding"});
  builder.AddDocument({"cancer", "screening"});
  return std::move(builder).Build().ValueOrDie();
}

TEST(IndexIoTest, RoundTripSmall) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_docs(), original.num_docs());
  IndexStats a = original.GetStats();
  IndexStats b = loaded->GetStats();
  EXPECT_EQ(a.num_terms, b.num_terms);
  EXPECT_EQ(a.num_postings, b.num_postings);
  EXPECT_EQ(a.total_tokens, b.total_tokens);

  for (const char* term : {"breast", "cancer", "heart", "unknown"}) {
    EXPECT_EQ(loaded->DocumentFrequency(term),
              original.DocumentFrequency(term))
        << term;
  }
  EXPECT_EQ(loaded->CountConjunctive({"breast", "cancer"}),
            original.CountConjunctive({"breast", "cancer"}));
  EXPECT_EQ(loaded->TopKCosine({"breast", "cancer"}, 5),
            original.TopKCosine({"breast", "cancer"}, 5));
}

TEST(IndexIoTest, RoundTripSyntheticCorpus) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "io-test";
  spec.num_docs = 500;
  spec.mixture = {{"oncology", 1.0}, {"cardiology", 1.0}};
  spec.seed = 321;
  InvertedIndex original = std::move(generator.Generate(spec)->index);

  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Behavioural equivalence on a sweep of real queries.
  for (auto terms : {std::vector<std::string>{"cancer"},
                     std::vector<std::string>{"cancer", "breast"},
                     std::vector<std::string>{"heart", "arteri"},
                     std::vector<std::string>{"tumor", "biopsi", "cancer"}}) {
    EXPECT_EQ(loaded->CountConjunctive(terms),
              original.CountConjunctive(terms));
    EXPECT_EQ(loaded->TopKCosine(terms, 10), original.TopKCosine(terms, 10));
  }
}

TEST(IndexIoTest, RoundTripIsByteStable) {
  InvertedIndex original = SmallIndex();
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(first).ok());
  std::istringstream is(first.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok());
  std::ostringstream second(std::ios::binary);
  ASSERT_TRUE(loaded->SaveTo(second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(IndexIoTest, RejectsBadMagic) {
  std::istringstream is("JUNKJUNKJUNK", std::ios::binary);
  EXPECT_TRUE(InvertedIndex::LoadFrom(is).status().IsInvalidArgument());
}

TEST(IndexIoTest, RejectsEmptyStream) {
  std::istringstream is("", std::ios::binary);
  EXPECT_FALSE(InvertedIndex::LoadFrom(is).ok());
}

TEST(IndexIoTest, RejectsTruncation) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::string payload = os.str();
  // Any prefix must be rejected, never crash.
  for (std::size_t cut : {4ul, 12ul, 20ul, payload.size() / 2,
                          payload.size() - 3}) {
    std::istringstream is(payload.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(InvertedIndex::LoadFrom(is).ok()) << "cut at " << cut;
  }
}

TEST(IndexIoTest, RejectsCorruptedBytes) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::string payload = os.str();
  // Flip bytes across the payload; loads must either fail cleanly or (for
  // benign flips inside term text) succeed — never crash or hang.
  stats::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = payload;
    std::size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5b);
    std::istringstream is(mutated, std::ios::binary);
    auto result = InvertedIndex::LoadFrom(is);
    if (result.ok()) {
      EXPECT_EQ(result->num_docs(), original.num_docs());
    }
  }
}

TEST(IndexIoTest, LoadsV1FormatFiles) {
  // A v1-serialized index (varint payloads) must load under the v2 reader
  // and behave identically to the original.
  for (bool synthetic : {false, true}) {
    InvertedIndex original;
    if (synthetic) {
      text::Analyzer analyzer;
      corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
      corpus::DatabaseSpec spec;
      spec.name = "v1-compat";
      spec.num_docs = 400;
      spec.mixture = {{"oncology", 1.0}};
      spec.seed = 7;
      original = std::move(generator.Generate(spec)->index);
    } else {
      original = SmallIndex();
    }
    std::istringstream is(SerializeAsV1(original), std::ios::binary);
    auto loaded = InvertedIndex::LoadFrom(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->num_docs(), original.num_docs());
    IndexStats a = original.GetStats();
    IndexStats b = loaded->GetStats();
    EXPECT_EQ(a.num_terms, b.num_terms);
    EXPECT_EQ(a.num_postings, b.num_postings);
    for (auto terms : {std::vector<std::string>{"cancer"},
                       std::vector<std::string>{"cancer", "breast"},
                       std::vector<std::string>{"tumor", "biopsi"}}) {
      EXPECT_EQ(loaded->CountConjunctive(terms),
                original.CountConjunctive(terms));
      EXPECT_EQ(loaded->TopKCosine(terms, 10), original.TopKCosine(terms, 10));
    }
    // Saving the loaded index upgrades it: the result is a v2 file that
    // round-trips byte-stably.
    std::ostringstream resaved(std::ios::binary);
    ASSERT_TRUE(loaded->SaveTo(resaved).ok());
    std::istringstream is2(resaved.str(), std::ios::binary);
    auto upgraded = InvertedIndex::LoadFrom(is2);
    ASSERT_TRUE(upgraded.ok()) << upgraded.status();
    std::ostringstream resaved2(std::ios::binary);
    ASSERT_TRUE(upgraded->SaveTo(resaved2).ok());
    EXPECT_EQ(resaved.str(), resaved2.str());
  }
}

TEST(IndexIoTest, RejectsUnsupportedVersion) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  for (std::uint32_t bad_version : {0u, 3u, 255u}) {
    std::string mutated = os.str();
    for (int i = 0; i < 4; ++i) {
      mutated[4 + i] = static_cast<char>(bad_version >> (8 * i));
    }
    std::istringstream is(mutated, std::ios::binary);
    EXPECT_TRUE(InvertedIndex::LoadFrom(is).status().IsInvalidArgument())
        << "version " << bad_version;
  }
}

TEST(IndexIoTest, RejectsCorruptV1Payload) {
  InvertedIndex original = SmallIndex();
  std::string v1_bytes = SerializeAsV1(original);
  // Flip bytes across the v1 file: clean failure or benign success, no
  // crashes — the legacy decoder keeps its full validation.
  stats::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = v1_bytes;
    std::size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5b);
    std::istringstream is(mutated, std::ios::binary);
    auto result = InvertedIndex::LoadFrom(is);
    if (result.ok()) {
      EXPECT_EQ(result->num_docs(), original.num_docs());
    }
  }
}

TEST(PostingListEncodedTest, FromEncodedRoundTrip) {
  PostingList list;
  for (DocId d = 0; d < 300; ++d) {
    ASSERT_TRUE(list.Append(d * 5 + 1, (d % 4) + 1).ok());
  }
  auto restored =
      PostingList::FromEncoded(list.size(), list.EncodePayload());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Decode(), list.Decode());
  // SkipTo works on the restored list (block directory was rebuilt).
  auto it = restored->begin();
  it.SkipTo(1001);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 1001u);
}

TEST(PostingListEncodedTest, RejectsTruncatedPayload) {
  PostingList list;
  for (DocId d = 0; d < 100; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  std::vector<std::uint8_t> bytes = list.EncodePayload();
  bytes.resize(bytes.size() / 2);
  EXPECT_TRUE(PostingList::FromEncoded(list.size(), std::move(bytes))
                  .status()
                  .IsInvalidArgument());
}

TEST(PostingListEncodedTest, RejectsCountMismatch) {
  PostingList list;
  for (DocId d = 0; d < 10; ++d) ASSERT_TRUE(list.Append(d, 1).ok());
  // Fewer claimed postings than the payload encodes.
  EXPECT_TRUE(PostingList::FromEncoded(5, list.EncodePayload())
                  .status()
                  .IsInvalidArgument());
  // More claimed postings than encoded.
  EXPECT_TRUE(PostingList::FromEncoded(20, list.EncodePayload())
                  .status()
                  .IsInvalidArgument());
}

TEST(PostingListEncodedTest, RejectsCorruptBlockHeaders) {
  PostingList list;
  for (DocId d = 0; d < 5 * PostingList::kBlockSize; ++d) {
    ASSERT_TRUE(list.Append(d * 3 + 1, (d % 5) + 1).ok());
  }
  const std::vector<std::uint8_t> payload = list.EncodePayload();
  const std::uint32_t count = list.size();

  auto expect_rejected = [&](std::vector<std::uint8_t> bytes,
                             const char* what) {
    EXPECT_TRUE(PostingList::FromEncoded(count, std::move(bytes))
                    .status()
                    .IsInvalidArgument())
        << what;
  };
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes[8] = 40;  // block 0 doc_bits beyond 32
    expect_rejected(std::move(bytes), "oversized bit width");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    // Zero block 0's last_doc: the range can no longer hold its postings.
    for (int i = 4; i < 8; ++i) bytes[i] = 0;
    expect_rejected(std::move(bytes), "inverted doc range");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes.resize(9);  // mid-directory truncation
    expect_rejected(std::move(bytes), "truncated directory");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes.pop_back();  // section shorter than the directory derives
    expect_rejected(std::move(bytes), "truncated section");
  }
  {
    std::vector<std::uint8_t> bytes = payload;
    bytes[0] ^= 0xff;  // block 0 first_doc no longer matches its gaps
    expect_rejected(std::move(bytes), "first_doc mismatch");
  }

  // Every single-byte flip inside the directory must fail cleanly or load
  // postings consistent with the claimed count — never crash.
  const std::size_t dir_bytes = (count / PostingList::kBlockSize) * 10;
  for (std::size_t pos = 0; pos < dir_bytes; ++pos) {
    std::vector<std::uint8_t> bytes = payload;
    bytes[pos] ^= 0x5b;
    auto result = PostingList::FromEncoded(count, std::move(bytes));
    if (result.ok()) {
      EXPECT_EQ(result->size(), count);
      EXPECT_EQ(result->Decode().size(), count);
    }
  }
}

TEST(PostingListEncodedTest, EmptyList) {
  auto restored = PostingList::FromEncoded(0, {});
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
