#include <sstream>

#include <gtest/gtest.h>

#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/inverted_index.h"
#include "stats/random.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace index {
namespace {

InvertedIndex SmallIndex() {
  InvertedIndex::Builder builder;
  builder.AddDocument({"breast", "cancer", "treatment"});
  builder.AddDocument({"breast", "cancer", "cancer", "biopsy"});
  builder.AddDocument({"heart", "attack"});
  builder.AddDocument({"breast", "feeding"});
  builder.AddDocument({"cancer", "screening"});
  return std::move(builder).Build().ValueOrDie();
}

TEST(IndexIoTest, RoundTripSmall) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_docs(), original.num_docs());
  IndexStats a = original.GetStats();
  IndexStats b = loaded->GetStats();
  EXPECT_EQ(a.num_terms, b.num_terms);
  EXPECT_EQ(a.num_postings, b.num_postings);
  EXPECT_EQ(a.total_tokens, b.total_tokens);

  for (const char* term : {"breast", "cancer", "heart", "unknown"}) {
    EXPECT_EQ(loaded->DocumentFrequency(term),
              original.DocumentFrequency(term))
        << term;
  }
  EXPECT_EQ(loaded->CountConjunctive({"breast", "cancer"}),
            original.CountConjunctive({"breast", "cancer"}));
  EXPECT_EQ(loaded->TopKCosine({"breast", "cancer"}, 5),
            original.TopKCosine({"breast", "cancer"}, 5));
}

TEST(IndexIoTest, RoundTripSyntheticCorpus) {
  text::Analyzer analyzer;
  corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
  corpus::DatabaseSpec spec;
  spec.name = "io-test";
  spec.num_docs = 500;
  spec.mixture = {{"oncology", 1.0}, {"cardiology", 1.0}};
  spec.seed = 321;
  InvertedIndex original = std::move(generator.Generate(spec)->index);

  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::istringstream is(os.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Behavioural equivalence on a sweep of real queries.
  for (auto terms : {std::vector<std::string>{"cancer"},
                     std::vector<std::string>{"cancer", "breast"},
                     std::vector<std::string>{"heart", "arteri"},
                     std::vector<std::string>{"tumor", "biopsi", "cancer"}}) {
    EXPECT_EQ(loaded->CountConjunctive(terms),
              original.CountConjunctive(terms));
    EXPECT_EQ(loaded->TopKCosine(terms, 10), original.TopKCosine(terms, 10));
  }
}

TEST(IndexIoTest, RoundTripIsByteStable) {
  InvertedIndex original = SmallIndex();
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(first).ok());
  std::istringstream is(first.str(), std::ios::binary);
  auto loaded = InvertedIndex::LoadFrom(is);
  ASSERT_TRUE(loaded.ok());
  std::ostringstream second(std::ios::binary);
  ASSERT_TRUE(loaded->SaveTo(second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(IndexIoTest, RejectsBadMagic) {
  std::istringstream is("JUNKJUNKJUNK", std::ios::binary);
  EXPECT_TRUE(InvertedIndex::LoadFrom(is).status().IsInvalidArgument());
}

TEST(IndexIoTest, RejectsEmptyStream) {
  std::istringstream is("", std::ios::binary);
  EXPECT_FALSE(InvertedIndex::LoadFrom(is).ok());
}

TEST(IndexIoTest, RejectsTruncation) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::string payload = os.str();
  // Any prefix must be rejected, never crash.
  for (std::size_t cut : {4ul, 12ul, 20ul, payload.size() / 2,
                          payload.size() - 3}) {
    std::istringstream is(payload.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(InvertedIndex::LoadFrom(is).ok()) << "cut at " << cut;
  }
}

TEST(IndexIoTest, RejectsCorruptedBytes) {
  InvertedIndex original = SmallIndex();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(original.SaveTo(os).ok());
  std::string payload = os.str();
  // Flip bytes across the payload; loads must either fail cleanly or (for
  // benign flips inside term text) succeed — never crash or hang.
  stats::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = payload;
    std::size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5b);
    std::istringstream is(mutated, std::ios::binary);
    auto result = InvertedIndex::LoadFrom(is);
    if (result.ok()) {
      EXPECT_EQ(result->num_docs(), original.num_docs());
    }
  }
}

TEST(PostingListEncodedTest, FromEncodedRoundTrip) {
  PostingList list;
  for (DocId d = 0; d < 300; ++d) {
    ASSERT_TRUE(list.Append(d * 5 + 1, (d % 4) + 1).ok());
  }
  auto restored =
      PostingList::FromEncoded(list.size(), list.encoded_bytes());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Decode(), list.Decode());
  // SkipTo works on the restored list (skip table was rebuilt).
  auto it = restored->begin();
  it.SkipTo(1001);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 1001u);
}

TEST(PostingListEncodedTest, RejectsTruncatedPayload) {
  PostingList list;
  for (DocId d = 0; d < 100; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  std::vector<std::uint8_t> bytes = list.encoded_bytes();
  bytes.resize(bytes.size() / 2);
  EXPECT_TRUE(PostingList::FromEncoded(list.size(), std::move(bytes))
                  .status()
                  .IsInvalidArgument());
}

TEST(PostingListEncodedTest, RejectsCountMismatch) {
  PostingList list;
  for (DocId d = 0; d < 10; ++d) ASSERT_TRUE(list.Append(d, 1).ok());
  // Fewer claimed postings than the payload encodes -> trailing garbage.
  EXPECT_TRUE(PostingList::FromEncoded(5, list.encoded_bytes())
                  .status()
                  .IsInvalidArgument());
  // More claimed postings than encoded -> truncation.
  EXPECT_TRUE(PostingList::FromEncoded(20, list.encoded_bytes())
                  .status()
                  .IsInvalidArgument());
}

TEST(PostingListEncodedTest, EmptyList) {
  auto restored = PostingList::FromEncoded(0, {});
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
