// Equivalence and concurrency coverage for the zero-copy read path:
// InvertedIndex::OpenMapped must answer every query bit-identically to the
// eagerly loaded index it was serialized from, and one shared mapped index
// must serve concurrent cursors without a data race (the TSAN stage runs
// the MappedIndexConcurrencyTest suite).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/domain.h"
#include "corpus/synthetic_corpus.h"
#include "index/index_metrics.h"
#include "index/inverted_index.h"
#include "text/analyzer.h"

namespace metaprobe {
namespace index {
namespace {

// Query sweep over the synthetic health corpus (analyzer-stemmed terms),
// mixing dense single terms, conjunctions, and an unknown term.
const std::vector<std::vector<std::string>>& QuerySweep() {
  static const std::vector<std::vector<std::string>> queries = {
      {"cancer"},
      {"heart"},
      {"cancer", "breast"},
      {"heart", "arteri"},
      {"tumor", "biopsi", "cancer"},
      {"cancer", "nosuchterm"},
      {},
  };
  return queries;
}

// The reference index, built once per process: a corpus large enough that
// posting lists span multiple blocks and WAND skipping actually fires.
const InvertedIndex& EagerIndex() {
  static const InvertedIndex* index = [] {
    text::Analyzer analyzer;
    corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
    corpus::DatabaseSpec spec;
    spec.name = "mapped-test";
    spec.num_docs = 2000;
    spec.mixture = {{"oncology", 1.0}, {"cardiology", 1.0}};
    spec.seed = 99;
    return new InvertedIndex(std::move(generator.Generate(spec)->index));
  }();
  return *index;
}

// The reference index serialized to a unique-per-process temp file; the
// file is removed at process exit.
struct SharedIndexFile {
  SharedIndexFile() {
    path = (std::filesystem::temp_directory_path() /
            "metaprobe_index_mapped_XXXXXX")
               .string();
    const int fd = ::mkstemp(path.data());
    if (fd >= 0) ::close(fd);
    std::ofstream os(path, std::ios::binary);
    EagerIndex().SaveTo(os).CheckOK();
  }
  ~SharedIndexFile() { std::remove(path.c_str()); }
  std::string path;
};

const std::string& IndexFilePath() {
  static SharedIndexFile file;
  return file.path;
}

TEST(MappedIndexTest, QueriesBitIdenticalToEager) {
  const InvertedIndex& eager = EagerIndex();
  for (bool eager_scoring : {false, true}) {
    MappedIndexOptions options;
    options.eager_scoring = eager_scoring;
    auto mapped = InvertedIndex::OpenMapped(IndexFilePath(), options);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    ASSERT_TRUE(mapped->EnsureScoringReady().ok());
    EXPECT_EQ(mapped->num_docs(), eager.num_docs());
    for (const auto& terms : QuerySweep()) {
      EXPECT_EQ(mapped->CountConjunctive(terms), eager.CountConjunctive(terms));
      EXPECT_EQ(mapped->FindConjunctive(terms, 50),
                eager.FindConjunctive(terms, 50));
      EXPECT_EQ(mapped->TopKCosine(terms, 10), eager.TopKCosine(terms, 10));
      EXPECT_EQ(mapped->TopKCosineExhaustive(terms, 10),
                eager.TopKCosineExhaustive(terms, 10));
      EXPECT_EQ(mapped->BestCosineScore(terms), eager.BestCosineScore(terms));
    }
    EXPECT_EQ(mapped->CountConjunctiveBatch(QuerySweep()),
              eager.CountConjunctiveBatch(QuerySweep()));
  }
}

TEST(MappedIndexTest, StatsReportTheMappedSplit) {
  auto mapped = InvertedIndex::OpenMapped(IndexFilePath());
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_TRUE(mapped->frozen());
  const IndexStats eager_stats = EagerIndex().GetStats();
  const IndexStats mapped_stats = mapped->GetStats();
  EXPECT_EQ(mapped_stats.num_terms, eager_stats.num_terms);
  EXPECT_EQ(mapped_stats.num_postings, eager_stats.num_postings);
  // The payload bytes stay in the mapping; only directories and the
  // vocabulary land on the heap.
  EXPECT_GT(mapped_stats.mapped_bytes, 0u);
  EXPECT_EQ(mapped_stats.posting_bytes,
            mapped_stats.heap_bytes + mapped_stats.mapped_bytes);
  EXPECT_LT(mapped_stats.heap_bytes, eager_stats.posting_bytes);
  // The eager index, by contrast, is all heap.
  EXPECT_EQ(eager_stats.mapped_bytes, 0u);
}

TEST(MappedIndexTest, FreezeKeepsBuiltIndexQueriesAndBytes) {
  // Freezing a builder-built index (packing every append tail) must change
  // neither query results nor the serialized bytes.
  auto build = [] {
    text::Analyzer analyzer;
    corpus::CorpusGenerator generator(corpus::HealthTopics(), {}, &analyzer);
    corpus::DatabaseSpec spec;
    spec.name = "freeze-test";
    spec.num_docs = 400;
    spec.mixture = {{"oncology", 1.0}};
    spec.seed = 7;
    return std::move(generator.Generate(spec)->index);
  };
  InvertedIndex plain = build();
  InvertedIndex frozen = build();
  std::ostringstream before(std::ios::binary);
  ASSERT_TRUE(frozen.SaveTo(before).ok());
  frozen.Freeze();
  EXPECT_TRUE(frozen.frozen());
  for (const auto& terms : QuerySweep()) {
    EXPECT_EQ(frozen.CountConjunctive(terms), plain.CountConjunctive(terms));
    EXPECT_EQ(frozen.TopKCosine(terms, 10), plain.TopKCosine(terms, 10));
  }
  std::ostringstream after(std::ios::binary);
  ASSERT_TRUE(frozen.SaveTo(after).ok());
  EXPECT_EQ(before.str(), after.str());
}

#ifndef METAPROBE_OBS_DISABLED
TEST(MappedIndexTest, GaugesTrackMappingLifetime) {
  const std::uint64_t bytes_before =
      IndexCounters::mapped_bytes.load(std::memory_order_relaxed);
  const std::uint64_t resident_before =
      IndexCounters::resident_lists.load(std::memory_order_relaxed);
  {
    auto mapped = InvertedIndex::OpenMapped(IndexFilePath());
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_EQ(IndexCounters::mapped_bytes.load(std::memory_order_relaxed),
              bytes_before + std::filesystem::file_size(IndexFilePath()));
    // Opening is lazy: no list has been decoded, none is resident yet.
    EXPECT_EQ(IndexCounters::resident_lists.load(std::memory_order_relaxed),
              resident_before);
    // Opening a cursor decodes the first block: exactly one list becomes
    // resident. Finalizing scoring then touches every non-empty list.
    ASSERT_NE(mapped->Postings("cancer"), nullptr);
    EXPECT_TRUE(mapped->Postings("cancer")->begin().Valid());
    EXPECT_EQ(IndexCounters::resident_lists.load(std::memory_order_relaxed),
              resident_before + 1);
    ASSERT_TRUE(mapped->EnsureScoringReady().ok());
    EXPECT_GT(IndexCounters::resident_lists.load(std::memory_order_relaxed),
              resident_before + 1);
  }
  // Destroying the index settles both gauges back to the baseline.
  EXPECT_EQ(IndexCounters::mapped_bytes.load(std::memory_order_relaxed),
            bytes_before);
  EXPECT_EQ(IndexCounters::resident_lists.load(std::memory_order_relaxed),
            resident_before);
}
#endif  // METAPROBE_OBS_DISABLED

TEST(MappedIndexConcurrencyTest, ConcurrentCursorsOverSharedMapping) {
  // One lazily opened mapping, many threads: every thread finalizes
  // scoring (call_once), then races full query sweeps whose cursors
  // lazily decode the same shared posting lists. TSAN must see no race
  // and every thread must get the reference answers.
  auto mapped = InvertedIndex::OpenMapped(IndexFilePath());
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const InvertedIndex& eager = EagerIndex();

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        if (!mapped->EnsureScoringReady().ok()) {
          ++mismatches[t];
          return;
        }
        for (int round = 0; round < kRounds; ++round) {
          for (const auto& terms : QuerySweep()) {
            if (mapped->CountConjunctive(terms) !=
                eager.CountConjunctive(terms)) {
              ++mismatches[t];
            }
            if (mapped->TopKCosine(terms, 10) != eager.TopKCosine(terms, 10)) {
              ++mismatches[t];
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
