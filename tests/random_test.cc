#include "stats/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace metaprobe {
namespace stats {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.UniformInt(std::uint64_t{7});
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit in 1000 draws
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.UniformInt(std::int64_t{-2}, std::int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalShifted) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(4.0, 0.5), 0.0);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(41);
  std::vector<std::size_t> sample = rng.SampleIndices(100, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsToPopulation) {
  Rng rng(43);
  EXPECT_EQ(rng.SampleIndices(5, 50).size(), 5u);
  EXPECT_TRUE(rng.SampleIndices(5, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(47);
  Rng forked = a.Fork();
  // Forked stream should not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == forked.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(50, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroIsMostLikely) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(50));
}

TEST(ZipfSamplerTest, ClassicRatio) {
  // With exponent 1, P(rank 0) / P(rank 1) == 2.
  ZipfSampler zipf(10, 1.0);
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(1), 2.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatch) {
  ZipfSampler zipf(5, 1.0);
  Rng rng(53);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), zipf.Probability(r), 0.01)
        << "rank " << r;
  }
}

TEST(ZipfSamplerTest, ZeroSizeBecomesSingleton) {
  ZipfSampler zipf(0, 1.0);
  Rng rng(59);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(WeightedSamplerTest, RespectsWeights) {
  WeightedSampler sampler({1.0, 3.0});
  Rng rng(61);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += sampler.Sample(&rng) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / static_cast<double>(n), 0.75, 0.02);
}

TEST(WeightedSamplerTest, ZeroWeightNeverSampled) {
  WeightedSampler sampler({0.0, 1.0, 0.0});
  Rng rng(67);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(&rng), 1u);
}

TEST(WeightedSamplerTest, DegenerateWeightsFallBackToUniform) {
  WeightedSampler sampler({0.0, 0.0, 0.0});
  Rng rng(71);
  std::set<std::size_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(sampler.Sample(&rng));
  EXPECT_EQ(seen.size(), 3u);
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, MonotoneDecreasingProbabilities) {
  ZipfSampler zipf(30, GetParam());
  for (std::size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GE(zipf.Probability(i - 1), zipf.Probability(i)) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3, 2.0));

}  // namespace
}  // namespace stats
}  // namespace metaprobe
