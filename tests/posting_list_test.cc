#include "index/posting_list.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stats/random.h"

namespace metaprobe {
namespace index {
namespace {

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.begin().Valid());
  EXPECT_TRUE(list.Decode().empty());
}

TEST(PostingListTest, AppendAndDecode) {
  PostingList list;
  ASSERT_TRUE(list.Append(3, 1).ok());
  ASSERT_TRUE(list.Append(7, 2).ok());
  ASSERT_TRUE(list.Append(1000, 5).ok());
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Decode(),
            (std::vector<Posting>{{3, 1}, {7, 2}, {1000, 5}}));
}

TEST(PostingListTest, RejectsNonIncreasingDocIds) {
  PostingList list;
  ASSERT_TRUE(list.Append(5, 1).ok());
  EXPECT_TRUE(list.Append(5, 1).IsInvalidArgument());
  EXPECT_TRUE(list.Append(4, 1).IsInvalidArgument());
}

TEST(PostingListTest, RejectsZeroTf) {
  PostingList list;
  EXPECT_TRUE(list.Append(1, 0).IsInvalidArgument());
}

TEST(PostingListTest, IteratorWalksInOrder) {
  PostingList list;
  for (DocId d = 0; d < 10; ++d) ASSERT_TRUE(list.Append(d * 3, d + 1).ok());
  DocId expected = 0;
  std::uint32_t tf = 1;
  for (auto it = list.begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.doc(), expected);
    EXPECT_EQ(it.tf(), tf);
    expected += 3;
    ++tf;
  }
  EXPECT_EQ(tf, 11u);
}

TEST(PostingListTest, LargeDocIdsAndTfsSurviveVarint) {
  PostingList list;
  ASSERT_TRUE(list.Append(0, 1).ok());
  ASSERT_TRUE(list.Append(1u << 20, 300).ok());
  ASSERT_TRUE(list.Append(0xFFFFFFF0u, 70000).ok());
  std::vector<Posting> decoded = list.Decode();
  EXPECT_EQ(decoded[1].doc, 1u << 20);
  EXPECT_EQ(decoded[1].tf, 300u);
  EXPECT_EQ(decoded[2].doc, 0xFFFFFFF0u);
  EXPECT_EQ(decoded[2].tf, 70000u);
}

TEST(PostingListTest, SkipToExactTarget) {
  PostingList list;
  for (DocId d = 0; d < 1000; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  auto it = list.begin();
  it.SkipTo(500);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 500u);
}

TEST(PostingListTest, SkipToBetweenPostings) {
  PostingList list;
  for (DocId d = 0; d < 1000; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  auto it = list.begin();
  it.SkipTo(501);  // odd: lands on 502
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 502u);
}

TEST(PostingListTest, SkipToPastEndInvalidates) {
  PostingList list;
  ASSERT_TRUE(list.Append(1, 1).ok());
  ASSERT_TRUE(list.Append(2, 1).ok());
  auto it = list.begin();
  it.SkipTo(100);
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, SkipToBehindCurrentIsNoOp) {
  PostingList list;
  for (DocId d = 0; d < 200; ++d) ASSERT_TRUE(list.Append(d, 1).ok());
  auto it = list.begin();
  it.SkipTo(150);
  EXPECT_EQ(it.doc(), 150u);
  it.SkipTo(10);  // behind: stays put
  EXPECT_EQ(it.doc(), 150u);
}

TEST(PostingListTest, SkipToAcrossManyBlocks) {
  PostingList list;
  // > kSkipInterval postings so the skip table is exercised.
  for (DocId d = 0; d < 10 * PostingList::kSkipInterval; ++d) {
    ASSERT_TRUE(list.Append(d * 7 + 1, (d % 9) + 1).ok());
  }
  auto it = list.begin();
  it.SkipTo(7 * 451 + 1);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), static_cast<DocId>(7 * 451 + 1));
  EXPECT_EQ(it.tf(), (451u % 9) + 1);
}

TEST(PostingListTest, InterleavedNextAndSkipTo) {
  PostingList list;
  for (DocId d = 0; d < 500; ++d) ASSERT_TRUE(list.Append(d * 3, 1).ok());
  auto it = list.begin();
  it.Next();
  EXPECT_EQ(it.doc(), 3u);
  it.SkipTo(300);
  EXPECT_EQ(it.doc(), 300u);
  it.Next();
  EXPECT_EQ(it.doc(), 303u);
  it.SkipTo(303);  // already there
  EXPECT_EQ(it.doc(), 303u);
}

class PostingListPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PostingListPropertyTest, RandomRoundTripAndSkips) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PostingList list;
  std::vector<Posting> reference;
  DocId doc = 0;
  const int n = 50 + static_cast<int>(rng.UniformInt(std::uint64_t{500}));
  for (int i = 0; i < n; ++i) {
    doc += 1 + static_cast<DocId>(rng.UniformInt(std::uint64_t{1000}));
    std::uint32_t tf = 1 + static_cast<std::uint32_t>(
                               rng.UniformInt(std::uint64_t{50}));
    ASSERT_TRUE(list.Append(doc, tf).ok());
    reference.push_back({doc, tf});
  }
  EXPECT_EQ(list.Decode(), reference);

  // Random SkipTo targets agree with a linear scan of the reference.
  for (int trial = 0; trial < 30; ++trial) {
    DocId target = static_cast<DocId>(rng.UniformInt(std::uint64_t{doc + 10}));
    auto it = list.begin();
    it.SkipTo(target);
    auto ref = std::find_if(reference.begin(), reference.end(),
                            [&](const Posting& p) { return p.doc >= target; });
    if (ref == reference.end()) {
      EXPECT_FALSE(it.Valid()) << "target " << target;
    } else {
      ASSERT_TRUE(it.Valid()) << "target " << target;
      EXPECT_EQ(it.doc(), ref->doc);
      EXPECT_EQ(it.tf(), ref->tf);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingListPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace index
}  // namespace metaprobe
