#include "index/posting_list.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stats/random.h"

namespace metaprobe {
namespace index {
namespace {

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.begin().Valid());
  EXPECT_TRUE(list.Decode().empty());
}

TEST(PostingListTest, AppendAndDecode) {
  PostingList list;
  ASSERT_TRUE(list.Append(3, 1).ok());
  ASSERT_TRUE(list.Append(7, 2).ok());
  ASSERT_TRUE(list.Append(1000, 5).ok());
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Decode(),
            (std::vector<Posting>{{3, 1}, {7, 2}, {1000, 5}}));
}

TEST(PostingListTest, RejectsNonIncreasingDocIds) {
  PostingList list;
  ASSERT_TRUE(list.Append(5, 1).ok());
  EXPECT_TRUE(list.Append(5, 1).IsInvalidArgument());
  EXPECT_TRUE(list.Append(4, 1).IsInvalidArgument());
}

TEST(PostingListTest, RejectsZeroTf) {
  PostingList list;
  EXPECT_TRUE(list.Append(1, 0).IsInvalidArgument());
}

TEST(PostingListTest, IteratorWalksInOrder) {
  PostingList list;
  for (DocId d = 0; d < 10; ++d) ASSERT_TRUE(list.Append(d * 3, d + 1).ok());
  DocId expected = 0;
  std::uint32_t tf = 1;
  for (auto it = list.begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.doc(), expected);
    EXPECT_EQ(it.tf(), tf);
    expected += 3;
    ++tf;
  }
  EXPECT_EQ(tf, 11u);
}

TEST(PostingListTest, LargeDocIdsAndTfsSurviveVarint) {
  PostingList list;
  ASSERT_TRUE(list.Append(0, 1).ok());
  ASSERT_TRUE(list.Append(1u << 20, 300).ok());
  ASSERT_TRUE(list.Append(0xFFFFFFF0u, 70000).ok());
  std::vector<Posting> decoded = list.Decode();
  EXPECT_EQ(decoded[1].doc, 1u << 20);
  EXPECT_EQ(decoded[1].tf, 300u);
  EXPECT_EQ(decoded[2].doc, 0xFFFFFFF0u);
  EXPECT_EQ(decoded[2].tf, 70000u);
}

TEST(PostingListTest, SkipToExactTarget) {
  PostingList list;
  for (DocId d = 0; d < 1000; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  auto it = list.begin();
  it.SkipTo(500);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 500u);
}

TEST(PostingListTest, SkipToBetweenPostings) {
  PostingList list;
  for (DocId d = 0; d < 1000; ++d) ASSERT_TRUE(list.Append(d * 2, 1).ok());
  auto it = list.begin();
  it.SkipTo(501);  // odd: lands on 502
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), 502u);
}

TEST(PostingListTest, SkipToPastEndInvalidates) {
  PostingList list;
  ASSERT_TRUE(list.Append(1, 1).ok());
  ASSERT_TRUE(list.Append(2, 1).ok());
  auto it = list.begin();
  it.SkipTo(100);
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, SkipToBehindCurrentIsNoOp) {
  PostingList list;
  for (DocId d = 0; d < 200; ++d) ASSERT_TRUE(list.Append(d, 1).ok());
  auto it = list.begin();
  it.SkipTo(150);
  EXPECT_EQ(it.doc(), 150u);
  it.SkipTo(10);  // behind: stays put
  EXPECT_EQ(it.doc(), 150u);
}

TEST(PostingListTest, SkipToAcrossManyBlocks) {
  PostingList list;
  // > kBlockSize postings so the block directory is exercised.
  for (DocId d = 0; d < 10 * PostingList::kBlockSize; ++d) {
    ASSERT_TRUE(list.Append(d * 7 + 1, (d % 9) + 1).ok());
  }
  auto it = list.begin();
  it.SkipTo(7 * 451 + 1);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), static_cast<DocId>(7 * 451 + 1));
  EXPECT_EQ(it.tf(), (451u % 9) + 1);
}

TEST(PostingListTest, SkipToBlockBoundaryDocs) {
  // Targets landing exactly on the first and last posting of each block,
  // and in the inter-block gap, from both a fresh and a reused iterator.
  PostingList list;
  const DocId stride = 5;
  const std::uint32_t n = 4 * PostingList::kBlockSize + 17;
  for (DocId d = 0; d < n; ++d) {
    ASSERT_TRUE(list.Append(d * stride, (d % 7) + 1).ok());
  }
  for (std::uint32_t block = 0; block < 5; ++block) {
    const std::uint32_t first = block * PostingList::kBlockSize;
    const std::uint32_t last =
        std::min(n - 1, first + PostingList::kBlockSize - 1);
    for (std::uint32_t idx : {first, last}) {
      auto it = list.begin();
      it.SkipTo(idx * stride);
      ASSERT_TRUE(it.Valid()) << "block " << block << " idx " << idx;
      EXPECT_EQ(it.doc(), idx * stride);
      EXPECT_EQ(it.tf(), (idx % 7) + 1);
      // In-gap target resolves to the next posting.
      if (idx > 0) {
        it = list.begin();
        it.SkipTo(idx * stride - (stride - 1));
        ASSERT_TRUE(it.Valid());
        EXPECT_EQ(it.doc(), idx * stride);
      }
    }
  }
  // Walking off a block edge with Next continues into the next block.
  auto it = list.begin();
  it.SkipTo((PostingList::kBlockSize - 1) * stride);
  ASSERT_TRUE(it.Valid());
  it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.doc(), PostingList::kBlockSize * stride);
}

TEST(PostingListTest, ByteSizeTracksPayloadNotCapacity) {
  PostingList list;
  EXPECT_EQ(list.ByteSize(), 0u);
  ASSERT_TRUE(list.Append(10, 2).ok());
  const std::size_t one = list.ByteSize();
  EXPECT_GT(one, 0u);
  for (DocId d = 11; d < 10 + PostingList::kBlockSize; ++d) {
    ASSERT_TRUE(list.Append(d, 1).ok());
  }
  // A packed full block of dense postings must undercut the uncompressed
  // tail representation it replaced (8 bytes per posting).
  EXPECT_LT(list.ByteSize(), PostingList::kBlockSize * 8u);
  const std::size_t before = list.ByteSize();
  list.ShrinkToFit();
  EXPECT_EQ(list.ByteSize(), before);
}

TEST(PostingListTest, InterleavedNextAndSkipTo) {
  PostingList list;
  for (DocId d = 0; d < 500; ++d) ASSERT_TRUE(list.Append(d * 3, 1).ok());
  auto it = list.begin();
  it.Next();
  EXPECT_EQ(it.doc(), 3u);
  it.SkipTo(300);
  EXPECT_EQ(it.doc(), 300u);
  it.Next();
  EXPECT_EQ(it.doc(), 303u);
  it.SkipTo(303);  // already there
  EXPECT_EQ(it.doc(), 303u);
}

class PostingListPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PostingListPropertyTest, RandomRoundTripAndSkips) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PostingList list;
  std::vector<Posting> reference;
  DocId doc = 0;
  const int n = 50 + static_cast<int>(rng.UniformInt(std::uint64_t{500}));
  for (int i = 0; i < n; ++i) {
    doc += 1 + static_cast<DocId>(rng.UniformInt(std::uint64_t{1000}));
    std::uint32_t tf = 1 + static_cast<std::uint32_t>(
                               rng.UniformInt(std::uint64_t{50}));
    ASSERT_TRUE(list.Append(doc, tf).ok());
    reference.push_back({doc, tf});
  }
  EXPECT_EQ(list.Decode(), reference);

  // Serialization round trip preserves the postings exactly.
  Result<PostingList> reloaded =
      PostingList::FromEncoded(list.size(), list.EncodePayload());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->Decode(), reference);

  // Random SkipTo targets agree with a linear scan of the reference, on
  // both the built list and its deserialized twin.
  for (int trial = 0; trial < 30; ++trial) {
    DocId target = static_cast<DocId>(rng.UniformInt(std::uint64_t{doc + 10}));
    auto ref = std::find_if(reference.begin(), reference.end(),
                            [&](const Posting& p) { return p.doc >= target; });
    for (const PostingList* probed : {&list, &*reloaded}) {
      auto it = probed->begin();
      it.SkipTo(target);
      if (ref == reference.end()) {
        EXPECT_FALSE(it.Valid()) << "target " << target;
      } else {
        ASSERT_TRUE(it.Valid()) << "target " << target;
        EXPECT_EQ(it.doc(), ref->doc);
        EXPECT_EQ(it.tf(), ref->tf);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingListPropertyTest,
                         ::testing::Range(1, 11));

class PostingListBoundarySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PostingListBoundarySizeTest, RoundTripAndBoundarySkips) {
  // Sizes straddling block boundaries: empty, single, one-short-of-full,
  // exactly full, one-into-the-next, and multi-block variants.
  const std::uint32_t n = static_cast<std::uint32_t>(GetParam());
  stats::Rng rng(n + 1);
  PostingList list;
  std::vector<Posting> reference;
  DocId doc = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    doc += 1 + static_cast<DocId>(rng.UniformInt(std::uint64_t{99}));
    std::uint32_t tf =
        1 + static_cast<std::uint32_t>(rng.UniformInt(std::uint64_t{9}));
    ASSERT_TRUE(list.Append(doc, tf).ok());
    reference.push_back({doc, tf});
  }
  ASSERT_EQ(list.size(), n);
  EXPECT_EQ(list.Decode(), reference);

  std::vector<std::uint8_t> payload = list.EncodePayload();
  if (n == 0) {
    EXPECT_TRUE(payload.empty());
  }
  Result<PostingList> reloaded = PostingList::FromEncoded(n, payload);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->Decode(), reference);
  // Re-encoding the reloaded list is byte-stable.
  EXPECT_EQ(reloaded->EncodePayload(), payload);

  // SkipTo to every posting, to every posting's predecessor gap, and past
  // the end, against both copies.
  for (const PostingList* probed : {&list, &*reloaded}) {
    for (std::size_t i = 0; i < reference.size(); ++i) {
      auto it = probed->begin();
      it.SkipTo(reference[i].doc);
      ASSERT_TRUE(it.Valid()) << "posting " << i;
      EXPECT_EQ(it.doc(), reference[i].doc);
      EXPECT_EQ(it.tf(), reference[i].tf);
    }
    auto it = probed->begin();
    it.SkipTo(doc + 1);  // past the last DocId
    EXPECT_FALSE(it.Valid());
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockEdges, PostingListBoundarySizeTest,
    ::testing::Values(0, 1, 2, 127, 128, 129, 255, 256, 257, 640));

// Builds a list of `n` postings from `rng` and the matching reference
// vector; the same rng state always yields the same postings, so two
// calls with equal seeds produce twins.
void BuildRandomList(stats::Rng* rng, std::uint32_t n, PostingList* list,
                     std::vector<Posting>* reference) {
  DocId doc = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    doc += 1 + static_cast<DocId>(rng->UniformInt(std::uint64_t{999}));
    std::uint32_t tf =
        1 + static_cast<std::uint32_t>(rng->UniformInt(std::uint64_t{30}));
    ASSERT_TRUE(list->Append(doc, tf).ok());
    reference->push_back({doc, tf});
  }
}

// Freeze() packs the append tail into a final partial block without
// changing a single observable: iteration order, SkipTo landing points,
// and the encoded payload must be bit-identical to the unfrozen twin,
// across ~1000 random lists plus every tail-boundary size.
TEST(PostingListFreezeTest, FreezeIsObservablyIdentical) {
  stats::Rng size_rng(42);
  int checked = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    // Cycle the boundary sizes through the first trials so 0, 1, 127,
    // 128 and 129 are always covered, then go random.
    const std::uint32_t boundary[] = {0, 1, 127, 128, 129};
    const std::uint32_t n =
        trial < 5 ? boundary[trial]
                  : static_cast<std::uint32_t>(
                        size_rng.UniformInt(std::uint64_t{400}));
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(trial);
    PostingList plain, frozen;
    std::vector<Posting> reference, twin;
    {
      stats::Rng rng(seed);
      BuildRandomList(&rng, n, &plain, &reference);
    }
    {
      stats::Rng rng(seed);
      BuildRandomList(&rng, n, &frozen, &twin);
    }
    ASSERT_EQ(reference, twin);
    frozen.Freeze();
    EXPECT_TRUE(frozen.frozen());
    EXPECT_FALSE(plain.frozen());

    EXPECT_EQ(frozen.size(), plain.size());
    EXPECT_EQ(frozen.Decode(), reference);
    EXPECT_EQ(frozen.EncodePayload(), plain.EncodePayload());

    // SkipTo from a fresh cursor agrees at a sampled set of targets:
    // every fourth posting, each one's predecessor gap, and past-the-end.
    for (std::size_t i = 0; i < reference.size(); i += 4) {
      for (DocId target : {reference[i].doc, reference[i].doc - 1}) {
        auto it = frozen.begin();
        it.SkipTo(target);
        auto ref = std::find_if(
            reference.begin(), reference.end(),
            [&](const Posting& p) { return p.doc >= target; });
        ASSERT_TRUE(it.Valid());
        EXPECT_EQ(it.doc(), ref->doc);
        EXPECT_EQ(it.tf(), ref->tf);
      }
    }
    auto it = frozen.begin();
    it.SkipTo(n == 0 ? 1 : reference.back().doc + 1);
    EXPECT_FALSE(it.Valid());
    ++checked;
  }
  EXPECT_EQ(checked, 1000);
}

TEST(PostingListFreezeTest, FrozenListRejectsAppend) {
  PostingList list;
  ASSERT_TRUE(list.Append(1, 1).ok());
  list.Freeze();
  EXPECT_TRUE(list.Append(2, 1).IsFailedPrecondition());
  // The list is unchanged by the rejected append.
  EXPECT_EQ(list.Decode(), (std::vector<Posting>{{1, 1}}));
}

TEST(PostingListFreezeTest, FreezeIsIdempotentAndShrinks) {
  PostingList list;
  // A tail-heavy list: one full block plus a 40-posting tail held
  // uncompressed at 8 bytes per posting until frozen.
  for (DocId d = 0; d < PostingList::kBlockSize + 40; ++d) {
    ASSERT_TRUE(list.Append(d * 2 + 1, (d % 3) + 1).ok());
  }
  const std::size_t before = list.ByteSize();
  const std::vector<Posting> reference = list.Decode();
  list.Freeze();
  EXPECT_LT(list.ByteSize(), before);
  const std::size_t frozen_size = list.ByteSize();
  list.Freeze();  // second freeze is a no-op
  EXPECT_EQ(list.ByteSize(), frozen_size);
  EXPECT_EQ(list.Decode(), reference);
  // A frozen heap list is all heap: the mapped share is zero.
  EXPECT_EQ(list.MappedByteSize(), 0u);
  EXPECT_EQ(list.HeapByteSize(), list.ByteSize());
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
