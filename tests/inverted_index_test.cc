#include "index/inverted_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "index/document_store.h"
#include "stats/random.h"

namespace metaprobe {
namespace index {
namespace {

InvertedIndex SmallIndex() {
  InvertedIndex::Builder builder;
  builder.AddDocument({"breast", "cancer", "treatment"});        // doc 0
  builder.AddDocument({"breast", "cancer", "cancer", "biopsy"});  // doc 1
  builder.AddDocument({"heart", "attack"});                       // doc 2
  builder.AddDocument({"breast", "feeding"});                     // doc 3
  builder.AddDocument({"cancer", "screening"});                   // doc 4
  return std::move(builder).Build().ValueOrDie();
}

TEST(InvertedIndexTest, EmptyDefaultIndex) {
  InvertedIndex index;
  EXPECT_EQ(index.num_docs(), 0u);
  EXPECT_EQ(index.DocumentFrequency("x"), 0u);
  EXPECT_EQ(index.CountConjunctive({"x"}), 0u);
}

TEST(InvertedIndexTest, BuildRejectsEmpty) {
  InvertedIndex::Builder builder;
  EXPECT_TRUE(std::move(builder).Build().status().IsFailedPrecondition());
}

TEST(InvertedIndexTest, NumDocs) {
  EXPECT_EQ(SmallIndex().num_docs(), 5u);
}

TEST(InvertedIndexTest, DocumentFrequency) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.DocumentFrequency("breast"), 3u);
  EXPECT_EQ(index.DocumentFrequency("cancer"), 3u);
  EXPECT_EQ(index.DocumentFrequency("heart"), 1u);
  EXPECT_EQ(index.DocumentFrequency("unknown"), 0u);
}

TEST(InvertedIndexTest, DuplicateTermsFoldIntoTf) {
  InvertedIndex index = SmallIndex();
  const PostingList* cancer = index.Postings("cancer");
  ASSERT_NE(cancer, nullptr);
  std::vector<Posting> postings = cancer->Decode();
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[1].doc, 1u);
  EXPECT_EQ(postings[1].tf, 2u);  // "cancer" twice in doc 1
}

TEST(InvertedIndexTest, CountConjunctiveSingleTerm) {
  EXPECT_EQ(SmallIndex().CountConjunctive({"breast"}), 3u);
}

TEST(InvertedIndexTest, CountConjunctivePair) {
  // "breast cancer" matches docs 0 and 1 only.
  EXPECT_EQ(SmallIndex().CountConjunctive({"breast", "cancer"}), 2u);
}

TEST(InvertedIndexTest, CountConjunctiveOrderInvariant) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.CountConjunctive({"breast", "cancer"}),
            index.CountConjunctive({"cancer", "breast"}));
}

TEST(InvertedIndexTest, CountConjunctiveUnknownTermIsZero) {
  EXPECT_EQ(SmallIndex().CountConjunctive({"breast", "zebra"}), 0u);
}

TEST(InvertedIndexTest, CountConjunctiveEmptyQueryIsZero) {
  EXPECT_EQ(SmallIndex().CountConjunctive({}), 0u);
}

TEST(InvertedIndexTest, CountConjunctiveDuplicateQueryTermsIgnored) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.CountConjunctive({"breast", "breast"}),
            index.CountConjunctive({"breast"}));
}

TEST(InvertedIndexTest, FindConjunctiveReturnsDocIds) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.FindConjunctive({"breast", "cancer"}, 10),
            (std::vector<DocId>{0, 1}));
}

TEST(InvertedIndexTest, FindConjunctiveHonorsLimit) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.FindConjunctive({"breast"}, 2).size(), 2u);
  EXPECT_TRUE(index.FindConjunctive({"breast"}, 0).empty());
}

TEST(InvertedIndexTest, TopKCosineRanksByRelevance) {
  InvertedIndex index = SmallIndex();
  std::vector<ScoredDoc> top = index.TopKCosine({"breast", "cancer"}, 3);
  ASSERT_GE(top.size(), 2u);
  // Docs 0 and 1 contain both terms and must outrank single-term matches.
  std::set<DocId> best{top[0].doc, top[1].doc};
  EXPECT_TRUE(best.count(0));
  EXPECT_TRUE(best.count(1));
  // Scores descend.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].score, top[i - 1].score);
  }
}

TEST(InvertedIndexTest, TopKCosineScoresWithinUnitBall) {
  InvertedIndex index = SmallIndex();
  for (const ScoredDoc& sd : index.TopKCosine({"breast", "cancer"}, 10)) {
    EXPECT_GT(sd.score, 0.0);
    EXPECT_LE(sd.score, 1.0 + 1e-9);
  }
}

TEST(InvertedIndexTest, TopKCosineEmptyForUnknownTerms) {
  EXPECT_TRUE(SmallIndex().TopKCosine({"zebra"}, 5).empty());
  EXPECT_TRUE(SmallIndex().TopKCosine({}, 5).empty());
  EXPECT_TRUE(SmallIndex().TopKCosine({"breast"}, 0).empty());
}

TEST(InvertedIndexTest, BestCosineScore) {
  InvertedIndex index = SmallIndex();
  EXPECT_GT(index.BestCosineScore({"breast", "cancer"}), 0.0);
  EXPECT_DOUBLE_EQ(index.BestCosineScore({"zebra"}), 0.0);
}

TEST(InvertedIndexTest, StatsReflectContent) {
  IndexStats stats = SmallIndex().GetStats();
  EXPECT_EQ(stats.num_docs, 5u);
  EXPECT_EQ(stats.num_terms, 8u);
  EXPECT_EQ(stats.total_tokens, 3u + 4u + 2u + 2u + 2u);
  EXPECT_GT(stats.num_postings, 0u);
  EXPECT_GT(stats.posting_bytes, 0u);
}

TEST(InvertedIndexTest, VocabularyExposesTerms) {
  InvertedIndex index = SmallIndex();
  EXPECT_NE(index.vocabulary().Lookup("breast"), text::kInvalidTermId);
  EXPECT_EQ(index.vocabulary().Lookup("zebra"), text::kInvalidTermId);
}

// Brute-force oracle for conjunctive counting.
std::uint64_t NaiveCount(const std::vector<std::vector<std::string>>& docs,
                         const std::vector<std::string>& terms) {
  if (terms.empty()) return 0;
  std::uint64_t count = 0;
  for (const auto& doc : docs) {
    bool all = true;
    for (const std::string& t : terms) {
      if (std::find(doc.begin(), doc.end(), t) == doc.end()) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

class InvertedIndexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(InvertedIndexPropertyTest, ConjunctiveCountMatchesBruteForce) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::vector<std::string> lexicon{"aa", "bb", "cc", "dd", "ee",
                                         "ff", "gg", "hh"};
  std::vector<std::vector<std::string>> docs;
  InvertedIndex::Builder builder;
  const int num_docs = 200;
  for (int d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    std::size_t len = 1 + rng.UniformInt(std::uint64_t{10});
    for (std::size_t t = 0; t < len; ++t) {
      terms.push_back(lexicon[rng.UniformInt(lexicon.size())]);
    }
    builder.AddDocument(terms);
    docs.push_back(std::move(terms));
  }
  InvertedIndex index = std::move(builder).Build().ValueOrDie();

  // Every 1-, 2- and 3-term combination agrees with the oracle.
  for (std::size_t a = 0; a < lexicon.size(); ++a) {
    EXPECT_EQ(index.CountConjunctive({lexicon[a]}),
              NaiveCount(docs, {lexicon[a]}));
    for (std::size_t b = a + 1; b < lexicon.size(); ++b) {
      EXPECT_EQ(index.CountConjunctive({lexicon[a], lexicon[b]}),
                NaiveCount(docs, {lexicon[a], lexicon[b]}))
          << lexicon[a] << " " << lexicon[b];
      for (std::size_t c = b + 1; c < lexicon.size(); c += 3) {
        EXPECT_EQ(
            index.CountConjunctive({lexicon[a], lexicon[b], lexicon[c]}),
            NaiveCount(docs, {lexicon[a], lexicon[b], lexicon[c]}));
      }
    }
  }
}

TEST_P(InvertedIndexPropertyTest, DocumentFrequencyMatchesBruteForce) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::vector<std::string> lexicon{"xx", "yy", "zz", "ww"};
  std::vector<std::vector<std::string>> docs;
  InvertedIndex::Builder builder;
  for (int d = 0; d < 150; ++d) {
    std::vector<std::string> terms;
    std::size_t len = 1 + rng.UniformInt(std::uint64_t{6});
    for (std::size_t t = 0; t < len; ++t) {
      terms.push_back(lexicon[rng.UniformInt(lexicon.size())]);
    }
    builder.AddDocument(terms);
    docs.push_back(std::move(terms));
  }
  InvertedIndex index = std::move(builder).Build().ValueOrDie();
  for (const std::string& term : lexicon) {
    EXPECT_EQ(index.DocumentFrequency(term), NaiveCount(docs, {term}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvertedIndexPropertyTest,
                         ::testing::Range(1, 9));

// ------------------------------------------------------------ DocumentStore

TEST(DocumentStoreTest, AddAndGet) {
  DocumentStore store;
  DocId id = store.Add({"Title", "Body text"});
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(store.size(), 1u);
  auto doc = store.Get(id);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->title, "Title");
}

TEST(DocumentStoreTest, GetOutOfRange) {
  DocumentStore store;
  EXPECT_TRUE(store.Get(0).status().IsNotFound());
  store.Add({"t", "b"});
  EXPECT_TRUE(store.Get(1).status().IsNotFound());
}

TEST(DocumentStoreTest, IdsAreSequential) {
  DocumentStore store;
  EXPECT_EQ(store.Add({"a", ""}), 0u);
  EXPECT_EQ(store.Add({"b", ""}), 1u);
  EXPECT_EQ(store.Add({"c", ""}), 2u);
}

}  // namespace
}  // namespace index
}  // namespace metaprobe
