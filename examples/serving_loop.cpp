// Serving loop: wrap a trained Metasearcher in the always-on
// MetasearchServer — bounded queue, worker pool, per-tenant token-bucket
// admission, deadline propagation into the probing loop, and the live
// introspection surface (/metrics, /statusz, /tracez, /healthz) over a
// dependency-free HTTP server.
//
//   build/examples/serving_loop
//
// The example submits from two tenants until one is throttled (the ticket
// carries a retry-after hint), then sends a request with a deliberately
// expired deadline: it still succeeds, returning the estimate-only
// selection with degraded=true — an expiring budget degrades the answer,
// it never becomes an error. Shutdown drains every accepted request.
//
// Databases serve in FrozenIndex mode: two are frozen in place at
// construction (append tails packed read-only), and one round-trips
// through an index file served zero-copy via InvertedIndex::OpenMapped —
// /statusz's "storage" rows show the mapped-vs-heap split.
//
// Environment knobs (used by tools/check.sh's scrape stage):
//   METAPROBE_SERVE_SECONDS  keep serving synthetic traffic and the HTTP
//                            endpoints alive for this many seconds
//   METAPROBE_PORT_FILE      write the bound introspection port here

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "common/strings.h"
#include "core/metasearcher.h"
#include "index/inverted_index.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serving/introspection.h"
#include "serving/metasearch_server.h"
#include "text/analyzer.h"

namespace {

using metaprobe::core::IndexMode;
using metaprobe::core::LocalDatabase;
using metaprobe::core::Metasearcher;
using metaprobe::core::ParseQuery;
using metaprobe::core::Query;
using metaprobe::serving::AdmitResultName;
using metaprobe::serving::IntrospectionService;
using metaprobe::serving::MetasearchServer;
using metaprobe::serving::MetasearchServerOptions;
using metaprobe::serving::ServeRequest;
using metaprobe::serving::ServeResponse;
using metaprobe::serving::Ticket;

metaprobe::index::InvertedIndex BuildIndex(
    const metaprobe::text::Analyzer& analyzer,
    const std::vector<std::string>& docs) {
  metaprobe::index::InvertedIndex::Builder builder;
  for (const std::string& body : docs) {
    builder.AddDocument(analyzer.Analyze(body));
  }
  return std::move(builder).Build().ValueOrDie();
}

std::shared_ptr<LocalDatabase> MakeDatabase(
    const metaprobe::text::Analyzer& analyzer, const std::string& name,
    const std::vector<std::string>& docs) {
  return std::make_shared<LocalDatabase>(name, BuildIndex(analyzer, docs),
                                         nullptr, IndexMode::kFrozen);
}

// Round-trips the corpus through an index file and serves it zero-copy:
// the list payloads stay in the mapping, decoded lazily on first touch.
// Scoring is finalized up front so serving threads never race the lazy
// path's first-touch work (see DESIGN.md §16).
std::shared_ptr<LocalDatabase> MakeMappedDatabase(
    const metaprobe::text::Analyzer& analyzer, const std::string& name,
    const std::vector<std::string>& docs) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("metaprobe_serving_" + name + ".mpix");
  {
    std::ofstream os(path, std::ios::binary);
    BuildIndex(analyzer, docs).SaveTo(os).CheckOK();
  }
  metaprobe::index::InvertedIndex index =
      metaprobe::index::InvertedIndex::OpenMapped(path.string()).ValueOrDie();
  index.EnsureScoringReady().CheckOK();
  std::remove(path.string().c_str());  // mapping outlives the unlink
  return std::make_shared<LocalDatabase>(name, std::move(index), nullptr,
                                         IndexMode::kFrozen);
}

}  // namespace

int main() {
  metaprobe::text::Analyzer analyzer;

  auto pubmed = MakeMappedDatabase(
      analyzer, "pubmed",
      {"Breast cancer patients receiving adjuvant chemotherapy showed "
       "improved survival after mastectomy and radiation treatment.",
       "Tamoxifen reduces recurrence of breast cancer in patients with "
       "positive biopsy results.",
       "Regular mammogram screening detects breast tumors earlier and "
       "lowers cancer mortality."});
  auto medlineplus = MakeDatabase(
      analyzer, "medlineplus",
      {"Breast cancer is a disease in which malignant cells form in breast "
       "tissue. Treatment includes surgery, chemotherapy and radiation.",
       "Coronary artery disease is the most common heart disease and can "
       "lead to heart attack."});
  auto sportsdaily = MakeDatabase(
      analyzer, "sports-daily",
      {"The quarterback returns from injury as the team chases a "
       "championship berth this season."});

  Metasearcher searcher;
  searcher.AddLocalDatabase(pubmed).CheckOK();
  searcher.AddLocalDatabase(medlineplus).CheckOK();
  searcher.AddLocalDatabase(sportsdaily).CheckOK();

  // The observability stack: a tracer with slow-trace sampling, and a
  // per-database health tracker fed by every serving probe. Both are
  // borrowed by the searcher, so they must outlive it.
  metaprobe::obs::QueryTracer tracer;
  tracer.set_slow_threshold_seconds(0.050);
  searcher.SetTracer(&tracer);
  metaprobe::obs::DbHealthTracker health(
      {"pubmed", "medlineplus", "sports-daily"});
  searcher.SetHealthTracker(&health);

  std::vector<Query> training;
  for (const char* raw :
       {"breast cancer", "cancer treatment", "heart attack",
        "chemotherapy radiation", "championship season", "heart disease",
        "cancer screening", "mammogram screening"}) {
    training.push_back(ParseQuery(analyzer, raw));
  }
  searcher.Train(training).CheckOK();

  // A small server: two workers, a short queue, and a deliberately tiny
  // per-tenant budget so the admission path is visible immediately.
  MetasearchServerOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 8;
  options.tenant_rate.refill_per_second = 1.0;
  options.tenant_rate.burst = 2.0;
  options.default_k = 1;
  options.default_threshold = 0.95;
  MetasearchServer server(&searcher, options);

  // Rolling SLO over the server's end-to-end latency histogram: windowed
  // percentiles and budget burn, exported as gauges and on /statusz.
  metaprobe::obs::SloOptions slo_options;
  slo_options.objective_seconds = 0.25;
  slo_options.error_budget = 0.05;
  metaprobe::obs::SloMonitor latency_slo(
      "server_latency",
      server.metrics().GetHistogram("metaprobe_server_latency_seconds"),
      slo_options);
  latency_slo.RegisterMetrics(&server.metrics());

  // The introspection surface, served over a local ephemeral port.
  IntrospectionService::Components components;
  components.searcher = &searcher;
  components.server = &server;
  components.tracer = &tracer;
  components.health = &health;
  components.slos = {&latency_slo};
  IntrospectionService introspection(components);
  metaprobe::obs::HttpServer http;
  introspection.RegisterEndpoints(&http);
  const int port = http.Start("127.0.0.1", 0).ValueOrDie();
  std::cout << "==== introspection ====\n"
            << "serving /metrics /statusz /tracez /healthz on 127.0.0.1:"
            << port << "\n";
  if (const char* port_file = std::getenv("METAPROBE_PORT_FILE")) {
    std::ofstream(port_file) << port << "\n";
  }

  // Tenant "alpha" burns through its burst; "beta" has its own bucket and
  // is still admitted.
  std::cout << "\n==== admission ====\n";
  for (const char* tenant : {"alpha", "alpha", "alpha", "beta"}) {
    ServeRequest request;
    request.query = ParseQuery(analyzer, "breast cancer");
    request.tenant = tenant;
    Ticket ticket = server.Submit(std::move(request));
    std::cout << tenant << ": " << AdmitResultName(ticket.admit);
    if (!ticket.accepted()) {
      std::cout << " (retry after " << ticket.retry_after_seconds << "s)\n";
      continue;
    }
    ServeResponse response = ticket.response.get();
    response.status.CheckOK();
    std::cout << " -> db " << response.report.databases[0]
              << ", certainty " << response.report.expected_correctness
              << ", " << response.report.probe_order.size() << " probes\n";
  }

  // An already-expired deadline (1 ns budget, stamped at enqueue) cuts
  // probing before it starts: the answer falls back to the summary-based
  // estimate and is flagged degraded — status stays OK.
  std::cout << "\n==== deadline ====\n";
  ServeRequest rushed;
  rushed.query = ParseQuery(analyzer, "heart attack");
  rushed.tenant = "beta";
  rushed.deadline_ns = 1;
  rushed.threshold = 0.9999;
  Ticket ticket = server.Submit(std::move(rushed));
  ServeResponse response = ticket.response.get();
  response.status.CheckOK();
  std::cout << "degraded=" << (response.degraded ? "true" : "false")
            << ", probes=" << response.report.probe_order.size()
            << ", estimate-only certainty "
            << response.report.expected_correctness << "\n";

  // With METAPROBE_SERVE_SECONDS set, keep a trickle of traffic flowing so
  // an external scraper (tools/check.sh) sees live windowed telemetry.
  const long serve_seconds =
      metaprobe::GetEnvLong("METAPROBE_SERVE_SECONDS", 0);
  if (serve_seconds > 0) {
    std::cout << "\nserving for " << serve_seconds << "s...\n";
    const auto stop_at = std::chrono::steady_clock::now() +
                         std::chrono::seconds(serve_seconds);
    // "heart attack" leads: its estimate-only certainty is below the
    // demanded threshold, so every admitted occurrence actually probes and
    // the scraper sees live per-database health windows, not just rows.
    const char* rotation[] = {"heart attack", "breast cancer",
                              "heart disease", "cancer screening"};
    std::size_t i = 0;
    while (std::chrono::steady_clock::now() < stop_at) {
      ServeRequest request;
      request.query = ParseQuery(analyzer, rotation[i++ % 4]);
      request.tenant = "scrape-demo";
      // Demand near-certainty: on this tiny world the 0.95 default is met
      // by estimates alone (zero probes), which would leave the health
      // windows empty for the scraper.
      request.threshold = 0.9999;
      Ticket t = server.Submit(std::move(request));
      if (t.accepted()) t.response.get();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  server.Shutdown();  // drains the queue; accepted work is never dropped
  auto stats = server.stats();
  std::cout << "\n==== server stats ====\n"
            << "accepted " << stats.accepted << ", throttled "
            << stats.throttled << ", completed_ok " << stats.completed_ok
            << ", completed_degraded " << stats.completed_degraded
            << ", failed " << stats.failed << "\n";

  // The per-database health table the drift detector (and /statusz) reads.
  std::cout << "\n==== database health ====\n";
  for (const auto& db : health.SnapshotAll()) {
    std::cout << db.name << ": score " << db.health_score << ", probes "
              << db.probes << ", error rate " << db.error_rate
              << ", ewma latency " << db.ewma_latency_seconds << "s"
              << (db.healthy ? "" : " (UNHEALTHY)") << "\n";
  }
  http.Stop();
  return 0;
}
