// Serving loop: wrap a trained Metasearcher in the always-on
// MetasearchServer — bounded queue, worker pool, per-tenant token-bucket
// admission, and deadline propagation into the probing loop.
//
//   build/examples/serving_loop
//
// The example submits from two tenants until one is throttled (the ticket
// carries a retry-after hint), then sends a request with a deliberately
// expired deadline: it still succeeds, returning the estimate-only
// selection with degraded=true — an expiring budget degrades the answer,
// it never becomes an error. Shutdown drains every accepted request.

#include <iostream>
#include <memory>

#include "core/metasearcher.h"
#include "index/inverted_index.h"
#include "serving/metasearch_server.h"
#include "text/analyzer.h"

namespace {

using metaprobe::core::LocalDatabase;
using metaprobe::core::Metasearcher;
using metaprobe::core::ParseQuery;
using metaprobe::core::Query;
using metaprobe::serving::AdmitResultName;
using metaprobe::serving::MetasearchServer;
using metaprobe::serving::MetasearchServerOptions;
using metaprobe::serving::ServeRequest;
using metaprobe::serving::ServeResponse;
using metaprobe::serving::Ticket;

std::shared_ptr<LocalDatabase> MakeDatabase(
    const metaprobe::text::Analyzer& analyzer, const std::string& name,
    const std::vector<std::string>& docs) {
  metaprobe::index::InvertedIndex::Builder builder;
  for (const std::string& body : docs) {
    builder.AddDocument(analyzer.Analyze(body));
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

}  // namespace

int main() {
  metaprobe::text::Analyzer analyzer;

  auto pubmed = MakeDatabase(
      analyzer, "pubmed",
      {"Breast cancer patients receiving adjuvant chemotherapy showed "
       "improved survival after mastectomy and radiation treatment.",
       "Tamoxifen reduces recurrence of breast cancer in patients with "
       "positive biopsy results.",
       "Regular mammogram screening detects breast tumors earlier and "
       "lowers cancer mortality."});
  auto medlineplus = MakeDatabase(
      analyzer, "medlineplus",
      {"Breast cancer is a disease in which malignant cells form in breast "
       "tissue. Treatment includes surgery, chemotherapy and radiation.",
       "Coronary artery disease is the most common heart disease and can "
       "lead to heart attack."});
  auto sportsdaily = MakeDatabase(
      analyzer, "sports-daily",
      {"The quarterback returns from injury as the team chases a "
       "championship berth this season."});

  Metasearcher searcher;
  searcher.AddLocalDatabase(pubmed).CheckOK();
  searcher.AddLocalDatabase(medlineplus).CheckOK();
  searcher.AddLocalDatabase(sportsdaily).CheckOK();

  std::vector<Query> training;
  for (const char* raw :
       {"breast cancer", "cancer treatment", "heart attack",
        "chemotherapy radiation", "championship season", "heart disease",
        "cancer screening", "mammogram screening"}) {
    training.push_back(ParseQuery(analyzer, raw));
  }
  searcher.Train(training).CheckOK();

  // A small server: two workers, a short queue, and a deliberately tiny
  // per-tenant budget so the admission path is visible immediately.
  MetasearchServerOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 8;
  options.tenant_rate.refill_per_second = 1.0;
  options.tenant_rate.burst = 2.0;
  options.default_k = 1;
  options.default_threshold = 0.95;
  MetasearchServer server(&searcher, options);

  // Tenant "alpha" burns through its burst; "beta" has its own bucket and
  // is still admitted.
  std::cout << "==== admission ====\n";
  for (const char* tenant : {"alpha", "alpha", "alpha", "beta"}) {
    ServeRequest request;
    request.query = ParseQuery(analyzer, "breast cancer");
    request.tenant = tenant;
    Ticket ticket = server.Submit(std::move(request));
    std::cout << tenant << ": " << AdmitResultName(ticket.admit);
    if (!ticket.accepted()) {
      std::cout << " (retry after " << ticket.retry_after_seconds << "s)\n";
      continue;
    }
    ServeResponse response = ticket.response.get();
    response.status.CheckOK();
    std::cout << " -> db " << response.report.databases[0]
              << ", certainty " << response.report.expected_correctness
              << ", " << response.report.probe_order.size() << " probes\n";
  }

  // An already-expired deadline (1 ns budget, stamped at enqueue) cuts
  // probing before it starts: the answer falls back to the summary-based
  // estimate and is flagged degraded — status stays OK.
  std::cout << "\n==== deadline ====\n";
  ServeRequest rushed;
  rushed.query = ParseQuery(analyzer, "heart attack");
  rushed.tenant = "beta";
  rushed.deadline_ns = 1;
  rushed.threshold = 0.9999;
  Ticket ticket = server.Submit(std::move(rushed));
  ServeResponse response = ticket.response.get();
  response.status.CheckOK();
  std::cout << "degraded=" << (response.degraded ? "true" : "false")
            << ", probes=" << response.report.probe_order.size()
            << ", estimate-only certainty "
            << response.report.expected_correctness << "\n";

  server.Shutdown();  // drains the queue; accepted work is never dropped
  auto stats = server.stats();
  std::cout << "\n==== server stats ====\n"
            << "accepted " << stats.accepted << ", throttled "
            << stats.throttled << ", completed_ok " << stats.completed_ok
            << ", completed_degraded " << stats.completed_degraded
            << ", failed " << stats.failed << "\n";
  return 0;
}
