// Quickstart: mediate three small hand-built databases, train the
// probabilistic model, and serve a query end to end.
//
//   build/examples/quickstart
//
// Walks the full metaprobe lifecycle on the paper's running example domain:
//   1. index raw text into searchable databases,
//   2. register them with a Metasearcher (summaries auto-collected),
//   3. train error distributions from sample queries,
//   4. select databases for "breast cancer" with a certainty knob, and
//   5. fetch + fuse the actual documents.

#include <iostream>
#include <memory>

#include "core/metasearcher.h"
#include "eval/table.h"
#include "index/inverted_index.h"
#include "text/analyzer.h"

namespace {

using metaprobe::core::LocalDatabase;
using metaprobe::core::Metasearcher;
using metaprobe::core::ParseQuery;
using metaprobe::core::Query;

// Builds a database from raw text documents, the way a crawler would.
std::shared_ptr<LocalDatabase> MakeDatabase(
    const metaprobe::text::Analyzer& analyzer, const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& docs) {
  metaprobe::index::InvertedIndex::Builder builder;
  auto store = std::make_shared<metaprobe::index::DocumentStore>();
  for (const auto& [title, body] : docs) {
    builder.AddDocument(analyzer.Analyze(body));
    store->Add({title, body});
  }
  metaprobe::index::InvertedIndex index =
      std::move(builder).Build().ValueOrDie();
  return std::make_shared<LocalDatabase>(name, std::move(index),
                                         std::move(store));
}

}  // namespace

int main() {
  metaprobe::text::Analyzer analyzer;

  // --- 1. Three tiny hidden-web databases --------------------------------
  auto pubmed = MakeDatabase(
      analyzer, "pubmed",
      {{"Adjuvant chemotherapy outcomes",
        "Breast cancer patients receiving adjuvant chemotherapy showed "
        "improved survival after mastectomy and radiation treatment."},
       {"Tamoxifen in early breast cancer",
        "Tamoxifen reduces recurrence of breast cancer in patients with "
        "positive biopsy results."},
       {"Screening mammography",
        "Regular mammogram screening detects breast tumors earlier and "
        "lowers cancer mortality."},
       {"Cardiac rehabilitation",
        "Patients recovering from heart attack benefit from supervised "
        "exercise and cholesterol management."}});

  auto medlineplus = MakeDatabase(
      analyzer, "medlineplus",
      {{"Breast cancer overview",
        "Breast cancer is a disease in which malignant cells form in breast "
        "tissue. Treatment includes surgery, chemotherapy and radiation."},
       {"Heart disease basics",
        "Coronary artery disease is the most common heart disease and can "
        "lead to heart attack."},
       {"Diabetes care",
        "Managing blood glucose with insulin and diet prevents diabetes "
        "complications."}});

  auto sportsdaily = MakeDatabase(
      analyzer, "sports-daily",
      {{"Playoff preview",
        "The quarterback returns from injury as the team chases a "
        "championship berth this season."},
       {"Marathon results",
        "Thousands of runners finished the city marathon under clear "
        "skies."}});

  // --- 2. Register with the metasearcher ---------------------------------
  Metasearcher searcher;
  searcher.AddLocalDatabase(pubmed).CheckOK();
  searcher.AddLocalDatabase(medlineplus).CheckOK();
  searcher.AddLocalDatabase(sportsdaily).CheckOK();

  // --- 3. Train error distributions from sample queries ------------------
  // Real deployments replay a query trace; a handful suffices here.
  std::vector<Query> training;
  for (const char* raw :
       {"breast cancer", "cancer treatment", "heart attack",
        "chemotherapy radiation", "blood glucose", "championship season",
        "marathon runners", "heart disease", "cancer screening",
        "insulin diet"}) {
    training.push_back(ParseQuery(analyzer, raw));
  }
  searcher.Train(training).CheckOK();

  // --- 4. Database selection with a certainty knob ------------------------
  Query query = ParseQuery(analyzer, "breast cancer");
  std::cout << "query: \"" << query.raw << "\" -> analyzed terms:";
  for (const auto& term : query.terms) std::cout << " " << term;
  std::cout << "\n\nestimates r_hat(db, q):\n";
  std::vector<double> estimates = searcher.EstimateAll(query);
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    std::cout << "  " << searcher.database(i).name() << ": " << estimates[i]
              << "\n";
  }

  auto report = searcher.Select(query, /*k=*/1, /*threshold=*/0.9);
  report.status().CheckOK();
  std::cout << "\nselected top-1 database: " << report->database_names[0]
            << " (certainty " << report->expected_correctness << ", "
            << report->num_probes() << " probe(s) used)\n";

  // --- 5. Full metasearch: dispatch + result fusion -----------------------
  auto hits = searcher.Search(query, /*k=*/2, /*threshold=*/0.8,
                              /*per_database=*/3, /*max_results=*/5);
  hits.status().CheckOK();
  std::cout << "\nfused results:\n";
  metaprobe::eval::TablePrinter table({"#", "database", "score", "title"});
  for (std::size_t i = 0; i < hits->size(); ++i) {
    const auto& hit = (*hits)[i];
    table.AddRow({metaprobe::eval::Cell(i + 1), hit.database_name,
                  metaprobe::eval::Cell(hit.score), hit.title});
  }
  table.Print(std::cout);
  return 0;
}
