// Observability: serve a few queries with the tracer installed, then dump
// everything an operator would scrape — the Prometheus text exposition of
// the serving metrics and the JSON-lines trace of the last query's probing
// trajectory.
//
//   build/examples/observability
//
// The trace shows APro's decision making step by step: the estimate and
// model-build stages, one span per probe (database, observed relevancy,
// certainty before/after, the policy's score), and the stop decision.

#include <iostream>
#include <memory>

#include "core/metasearcher.h"
#include "index/inverted_index.h"
#include "obs/trace.h"
#include "text/analyzer.h"

namespace {

using metaprobe::core::LocalDatabase;
using metaprobe::core::Metasearcher;
using metaprobe::core::MetasearcherOptions;
using metaprobe::core::ParseQuery;
using metaprobe::core::Query;

std::shared_ptr<LocalDatabase> MakeDatabase(
    const metaprobe::text::Analyzer& analyzer, const std::string& name,
    const std::vector<std::string>& docs) {
  metaprobe::index::InvertedIndex::Builder builder;
  for (const std::string& body : docs) {
    builder.AddDocument(analyzer.Analyze(body));
  }
  return std::make_shared<LocalDatabase>(
      name, std::move(builder).Build().ValueOrDie());
}

}  // namespace

int main() {
  metaprobe::text::Analyzer analyzer;

  auto pubmed = MakeDatabase(
      analyzer, "pubmed",
      {"Breast cancer patients receiving adjuvant chemotherapy showed "
       "improved survival after mastectomy and radiation treatment.",
       "Tamoxifen reduces recurrence of breast cancer in patients with "
       "positive biopsy results.",
       "Regular mammogram screening detects breast tumors earlier and "
       "lowers cancer mortality.",
       "Patients recovering from heart attack benefit from supervised "
       "exercise and cholesterol management."});
  auto medlineplus = MakeDatabase(
      analyzer, "medlineplus",
      {"Breast cancer is a disease in which malignant cells form in breast "
       "tissue. Treatment includes surgery, chemotherapy and radiation.",
       "Coronary artery disease is the most common heart disease and can "
       "lead to heart attack.",
       "Managing blood glucose with insulin and diet prevents diabetes "
       "complications."});
  auto sportsdaily = MakeDatabase(
      analyzer, "sports-daily",
      {"The quarterback returns from injury as the team chases a "
       "championship berth this season.",
       "Thousands of runners finished the city marathon under clear "
       "skies."});

  MetasearcherOptions options;
  options.enable_rd_cache = true;  // so the cache series carry traffic
  Metasearcher searcher(options);
  searcher.AddLocalDatabase(pubmed).CheckOK();
  searcher.AddLocalDatabase(medlineplus).CheckOK();
  searcher.AddLocalDatabase(sportsdaily).CheckOK();

  std::vector<Query> training;
  for (const char* raw :
       {"breast cancer", "cancer treatment", "heart attack",
        "chemotherapy radiation", "blood glucose", "championship season",
        "marathon runners", "heart disease", "cancer screening",
        "insulin diet"}) {
    training.push_back(ParseQuery(analyzer, raw));
  }
  searcher.Train(training).CheckOK();

  // Install the tracer, then serve: every Select records a structured trace.
  metaprobe::obs::QueryTracer tracer;
  searcher.SetTracer(&tracer);
  for (const char* raw : {"heart attack", "breast cancer", "breast cancer"}) {
    searcher.Select(ParseQuery(analyzer, raw), /*k=*/1, /*threshold=*/0.95)
        .status()
        .CheckOK();
  }

  // What a Prometheus scrape of this process would return.
  std::cout << "==== metrics exposition ====\n"
            << searcher.metrics().ExpositionText();

  // The probing trajectory of the most recent query, one JSON object per
  // span — pipe into jq or a trace viewer.
  std::cout << "\n==== trace (JSON lines, latest query) ====\n";
  auto latest = tracer.Latest();
  if (latest != nullptr) {
    std::cout << metaprobe::obs::QueryTracer::ExportJsonLines(*latest);
  }
  return 0;
}
