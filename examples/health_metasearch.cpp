// Health-domain metasearch: the paper's Section 6 scenario as an
// application. Builds the 20-database health/science/news testbed, trains
// on a synthetic query trace, then serves a set of medical queries —
// showing for each one the selection, the probes spent, and the merged
// result list.
//
//   build/examples/health_metasearch
//
// Environment knobs: METAPROBE_SCALE (database size multiplier),
// METAPROBE_SEED.

#include <iostream>

#include "common/strings.h"
#include "core/metasearcher.h"
#include "eval/table.h"
#include "eval/testbed.h"

namespace {

using metaprobe::core::ParseQuery;
using metaprobe::core::Query;

}  // namespace

int main() {
  metaprobe::eval::TestbedOptions options;
  options.scale = static_cast<std::uint32_t>(
      metaprobe::GetEnvLong("METAPROBE_SCALE", 1));
  options.seed = static_cast<std::uint64_t>(
      metaprobe::GetEnvLong("METAPROBE_SEED", 42));
  options.train_queries_per_term_count = 500;
  options.test_queries_per_term_count = 10;
  options.store_documents = true;  // keep text for result titles

  std::cout << "building 20 synthetic health/science/news databases...\n";
  auto testbed = metaprobe::eval::BuildHealthTestbed(options);
  testbed.status().CheckOK();

  metaprobe::eval::TablePrinter inventory({"database", "documents",
                                           "distinct terms"});
  for (const auto& db : testbed->databases) {
    auto stats = db->index_for_summaries().GetStats();
    inventory.AddRow({db->name(), metaprobe::eval::Cell(
                                      static_cast<std::size_t>(stats.num_docs)),
                      metaprobe::eval::Cell(
                          static_cast<std::size_t>(stats.num_terms))});
  }
  inventory.Print(std::cout);

  std::cout << "\ntraining error distributions on "
            << testbed->train_queries.size() << " trace queries...\n";
  metaprobe::core::QueryClassOptions query_class;
  query_class.estimate_threshold = 30;  // scale-appropriate; see DESIGN.md
  metaprobe::core::MetasearcherOptions searcher_options;
  searcher_options.query_class = query_class;
  auto searcher = metaprobe::eval::BuildTrainedMetasearcher(*testbed,
                                                            searcher_options);
  searcher.status().CheckOK();

  const metaprobe::text::Analyzer& analyzer = *testbed->analyzer;
  const char* kUserQueries[] = {
      "breast cancer treatment", "heart attack",  "child vaccine",
      "depression therapy",      "vitamin diet",  "brain seizure",
  };
  for (const char* raw : kUserQueries) {
    Query query = ParseQuery(analyzer, raw);
    std::cout << "\n==================================================\n"
              << "user query: \"" << raw << "\"\n";

    auto report = (*searcher)->Select(query, /*k=*/3, /*threshold=*/0.85);
    if (!report.ok()) {
      std::cout << "  selection failed: " << report.status() << "\n";
      continue;
    }
    std::cout << "selected databases (certainty "
              << metaprobe::FormatDouble(report->expected_correctness, 3)
              << ", " << report->num_probes() << " probes):";
    for (const std::string& name : report->database_names) {
      std::cout << " " << name;
    }
    std::cout << "\n";
    if (!report->probe_order.empty()) {
      std::cout << "probed:";
      for (std::size_t id : report->probe_order) {
        std::cout << " " << (*searcher)->database(id).name();
      }
      std::cout << "\n";
    }

    auto hits = (*searcher)->Search(query, 3, 0.85, /*per_database=*/3,
                                    /*max_results=*/5);
    if (!hits.ok()) {
      std::cout << "  search failed: " << hits.status() << "\n";
      continue;
    }
    metaprobe::eval::TablePrinter table({"#", "database", "score", "title"});
    for (std::size_t i = 0; i < hits->size(); ++i) {
      const auto& hit = (*hits)[i];
      table.AddRow({metaprobe::eval::Cell(i + 1), hit.database_name,
                    metaprobe::eval::Cell(hit.score), hit.title});
    }
    table.Print(std::cout);
  }

  std::cout << "\ntotal backend queries served (training + selection + "
               "search):\n";
  std::uint64_t total = 0;
  for (const auto& db : testbed->databases) total += db->queries_served();
  std::cout << "  " << total << " across " << testbed->num_databases()
            << " databases\n";
  return 0;
}
