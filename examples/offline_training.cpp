// Offline training / online serving: the deployment split a real
// metasearcher uses.
//
//   build/examples/offline_training
//
// Phase 1 (offline, expensive): crawl/generate the corpora, build indexes,
// train error distributions by replaying a query trace — then persist both
// the indexes and the trained model to disk.
//
// Phase 2 (online, cheap): load the indexes and the model from disk and
// serve queries immediately, without re-probing a single database.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/strings.h"
#include "core/metasearcher.h"
#include "eval/table.h"
#include "eval/testbed.h"

namespace fs = std::filesystem;

int main() {
  fs::path workdir = fs::temp_directory_path() / "metaprobe_offline_demo";
  fs::create_directories(workdir);
  std::cout << "workdir: " << workdir << "\n";

  // ------------------------------------------------------------------
  // Phase 1: offline training.
  // ------------------------------------------------------------------
  std::vector<std::string> database_names;
  {
    std::cout << "\n[offline] building corpora and training...\n";
    metaprobe::eval::TestbedOptions options;
    options.seed = 42;
    options.train_queries_per_term_count = 400;
    options.test_queries_per_term_count = 10;
    auto testbed = metaprobe::eval::BuildHealthTestbed(options);
    testbed.status().CheckOK();

    metaprobe::core::MetasearcherOptions searcher_options;
    searcher_options.query_class.estimate_threshold = 30;
    auto searcher =
        metaprobe::eval::BuildTrainedMetasearcher(*testbed, searcher_options);
    searcher.status().CheckOK();

    // Persist every database's index...
    for (const auto& db : testbed->databases) {
      database_names.push_back(db->name());
      std::ofstream out(workdir / (db->name() + ".idx"), std::ios::binary);
      db->index_for_summaries().SaveTo(out).CheckOK();
    }
    // ...and the trained model.
    std::ofstream model_out(workdir / "model.mp");
    (*searcher)->SaveTrainedModel(model_out).CheckOK();
    std::cout << "[offline] wrote " << database_names.size()
              << " indexes + trained model ("
              << fs::file_size(workdir / "model.mp") << " bytes)\n";
  }

  // ------------------------------------------------------------------
  // Phase 2: online serving from disk. No training, no generator.
  // ------------------------------------------------------------------
  std::cout << "\n[online] loading indexes and model from disk...\n";
  std::vector<std::shared_ptr<metaprobe::core::HiddenWebDatabase>> databases;
  for (const std::string& name : database_names) {
    std::ifstream in(workdir / (name + ".idx"), std::ios::binary);
    auto index = metaprobe::index::InvertedIndex::LoadFrom(in);
    index.status().CheckOK();
    databases.push_back(std::make_shared<metaprobe::core::LocalDatabase>(
        name, std::move(*index)));
  }
  std::ifstream model_in(workdir / "model.mp");
  auto searcher =
      metaprobe::core::Metasearcher::LoadTrainedModel(model_in, databases);
  searcher.status().CheckOK();
  std::cout << "[online] ready: " << (*searcher)->num_databases()
            << " databases, trained=" << (*searcher)->trained() << "\n";

  metaprobe::text::Analyzer analyzer;
  metaprobe::eval::TablePrinter table(
      {"query", "top database", "certainty", "probes"});
  for (const char* raw :
       {"breast cancer", "heart attack", "vitamin diet", "brain seizure"}) {
    auto query = metaprobe::core::ParseQuery(analyzer, raw);
    auto report = (*searcher)->Select(query, 1, 0.9);
    report.status().CheckOK();
    table.AddRow({raw,
                  report->database_names.empty() ? "-"
                                                 : report->database_names[0],
                  metaprobe::FormatDouble(report->expected_correctness, 3),
                  metaprobe::eval::Cell(report->num_probes())});
  }
  table.Print(std::cout);

  std::error_code ec;
  fs::remove_all(workdir, ec);
  std::cout << "\ncleaned up " << workdir << "\n";
  return 0;
}
