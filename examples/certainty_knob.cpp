// The certainty knob: the paper's headline user-facing idea (Section 3.4).
// The user states how certain the answer must be; the metasearcher spends
// exactly as many probes as that certainty costs.
//
//   build/examples/certainty_knob
//
// Sweeps the required certainty t for a handful of queries and prints the
// probes spent, the final certainty and whether the answer changed — making
// the cost/quality trade-off tangible.

#include <iostream>

#include "common/strings.h"
#include "core/metasearcher.h"
#include "eval/table.h"
#include "eval/testbed.h"

int main() {
  metaprobe::eval::TestbedOptions options;
  options.scale = static_cast<std::uint32_t>(
      metaprobe::GetEnvLong("METAPROBE_SCALE", 1));
  options.seed = 42;
  options.train_queries_per_term_count = 500;
  options.test_queries_per_term_count = 10;

  std::cout << "building the health testbed...\n";
  auto testbed = metaprobe::eval::BuildHealthTestbed(options);
  testbed.status().CheckOK();

  metaprobe::core::MetasearcherOptions searcher_options;
  searcher_options.query_class.estimate_threshold = 30;
  auto searcher = metaprobe::eval::BuildTrainedMetasearcher(*testbed,
                                                            searcher_options);
  searcher.status().CheckOK();

  const metaprobe::text::Analyzer& analyzer = *testbed->analyzer;
  for (const char* raw : {"breast cancer", "infection antibiotic child"}) {
    metaprobe::core::Query query = metaprobe::core::ParseQuery(analyzer, raw);
    std::cout << "\nquery: \"" << raw << "\" (selecting the top-1 database)\n";
    metaprobe::eval::TablePrinter table(
        {"required certainty t", "probes spent", "achieved certainty",
         "answer"});
    for (double t : {0.50, 0.70, 0.80, 0.90, 0.95, 0.99}) {
      auto report = (*searcher)->Select(query, /*k=*/1, t);
      report.status().CheckOK();
      table.AddRow({metaprobe::FormatDouble(t, 2),
                    metaprobe::eval::Cell(report->num_probes()),
                    metaprobe::FormatDouble(report->expected_correctness, 3),
                    report->database_names.empty()
                        ? "-"
                        : report->database_names[0]});
    }
    table.Print(std::cout);
  }

  std::cout << "\nHigher certainty costs more probes; the answer stabilizes "
               "once the true leader is confirmed. This is the paper's "
               "\"certainty level as a knob\" (Section 3.4).\n";
  return 0;
}
