// Extending metaprobe: plug a custom relevancy estimator into the
// probabilistic machinery.
//
//   build/examples/custom_estimator
//
// The probabilistic relevancy model is estimator-agnostic: it learns the
// error behaviour of WHATEVER point estimator it is given. This example
// defines a deliberately crude estimator ("half the rarest keyword's
// document frequency"), trains the model around it, and shows that the
// RD-based selection still recovers most of the lost accuracy — the
// paper's framework compensating for a weak estimator.

#include <iostream>
#include <memory>

#include "common/strings.h"
#include "core/correctness.h"
#include "core/metasearcher.h"
#include "core/selection.h"
#include "eval/golden.h"
#include "eval/table.h"
#include "eval/testbed.h"

namespace {

// A crude custom estimator: half of the rarest keyword's df. Ignores all
// other keywords, so it systematically overestimates sparse conjunctions.
class HalfMinEstimator : public metaprobe::core::RelevancyEstimator {
 public:
  std::string name() const override { return "half-min-df"; }
  double Estimate(const metaprobe::core::StatSummary& summary,
                  const metaprobe::core::Query& query) const override {
    if (query.empty()) return 0.0;
    double min_df = static_cast<double>(summary.database_size());
    for (const std::string& term : query.terms) {
      min_df = std::min(min_df,
                        static_cast<double>(summary.DocumentFrequency(term)));
    }
    return 0.5 * min_df;
  }
};

struct MethodScore {
  double baseline = 0.0;
  double rd_based = 0.0;
};

MethodScore Evaluate(const metaprobe::eval::Testbed& testbed,
                     std::unique_ptr<metaprobe::core::RelevancyEstimator>
                         estimator,
                     const metaprobe::eval::GoldenStandard& golden) {
  metaprobe::core::MetasearcherOptions options;
  options.query_class.estimate_threshold = 30;
  metaprobe::core::Metasearcher searcher(options);
  for (std::size_t i = 0; i < testbed.databases.size(); ++i) {
    searcher.AddDatabase(testbed.databases[i], testbed.summaries[i])
        .CheckOK();
  }
  searcher.SetEstimator(std::move(estimator)).CheckOK();
  searcher.Train(testbed.train_queries).CheckOK();

  MethodScore score;
  for (std::size_t q = 0; q < testbed.test_queries.size(); ++q) {
    const metaprobe::core::Query& query = testbed.test_queries[q];
    std::vector<std::size_t> actual = golden.TopK(q, 1);
    auto baseline =
        metaprobe::core::SelectByEstimate(searcher.EstimateAll(query), 1);
    score.baseline +=
        metaprobe::core::AbsoluteCorrectness(baseline.databases, actual);
    auto model = searcher.BuildModel(query).ValueOrDie();
    auto rd = metaprobe::core::SelectByRd(
        model, 1, metaprobe::core::CorrectnessMetric::kAbsolute);
    score.rd_based +=
        metaprobe::core::AbsoluteCorrectness(rd.databases, actual);
  }
  double n = static_cast<double>(testbed.test_queries.size());
  score.baseline /= n;
  score.rd_based /= n;
  return score;
}

}  // namespace

int main() {
  metaprobe::eval::TestbedOptions options;
  options.scale = static_cast<std::uint32_t>(
      metaprobe::GetEnvLong("METAPROBE_SCALE", 1));
  options.seed = 42;
  options.train_queries_per_term_count = 500;
  options.test_queries_per_term_count = 300;

  std::cout << "building the health testbed...\n";
  auto testbed = metaprobe::eval::BuildHealthTestbed(options);
  testbed.status().CheckOK();
  auto golden = metaprobe::eval::GoldenStandard::Build(
      testbed->database_ptrs(), testbed->test_queries);
  golden.status().CheckOK();

  std::cout << "evaluating three estimators (top-1 absolute correctness "
               "over " << testbed->test_queries.size() << " queries)...\n\n";
  metaprobe::eval::TablePrinter table(
      {"estimator", "raw estimates (baseline)", "with probabilistic model"});
  {
    auto score = Evaluate(
        *testbed, std::make_unique<metaprobe::core::TermIndependenceEstimator>(),
        *golden);
    table.AddRow({"term-independence (paper)",
                  metaprobe::FormatDouble(score.baseline, 3),
                  metaprobe::FormatDouble(score.rd_based, 3)});
  }
  {
    auto score = Evaluate(
        *testbed, std::make_unique<metaprobe::core::MinFrequencyEstimator>(),
        *golden);
    table.AddRow({"min-frequency upper bound",
                  metaprobe::FormatDouble(score.baseline, 3),
                  metaprobe::FormatDouble(score.rd_based, 3)});
  }
  {
    auto score = Evaluate(*testbed, std::make_unique<HalfMinEstimator>(),
                          *golden);
    table.AddRow({"half-min-df (custom, crude)",
                  metaprobe::FormatDouble(score.baseline, 3),
                  metaprobe::FormatDouble(score.rd_based, 3)});
  }
  table.Print(std::cout);

  std::cout << "\nThe probabilistic relevancy model learns each estimator's "
               "error behaviour, so even a crude estimator becomes usable "
               "once its errors are modelled.\n";
  return 0;
}
